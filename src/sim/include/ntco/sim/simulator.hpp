#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "ntco/common/contracts.hpp"
#include "ntco/common/inline_function.hpp"
#include "ntco/common/units.hpp"
#include "ntco/obs/trace.hpp"

/// \file simulator.hpp
/// Deterministic discrete-event simulation kernel.
///
/// The kernel is single-threaded and deterministic: events that share a
/// timestamp fire in the order they were scheduled. All platform simulators
/// (serverless, edge, network, scheduler, CI/CD) are built on this kernel, in
/// the role EdgeCloudSim / iFogSim play for published offloading studies.
///
/// Storage layout (see DESIGN.md "Event kernel"):
///  - Handlers live in a chunked slot arena (512 slots per chunk, one
///    cache line per slot), so growth never moves a live handler and a
///    slot address is stable for the event's lifetime. Free slots are
///    threaded into an intrusive free list through the seq field.
///  - Per-slot lifecycle state and the recycle generation are packed into
///    a parallel 4-byte meta word ((generation << 2) | state), so cancel
///    and the heap's skip test read one word instead of a 64-byte slot.
///  - The ready queue is an implicit 4-ary min-heap of 16-byte
///    (time, seq-low, slot) nodes ordered by (time, seq).
///
/// An EventId packs (generation << 32) | slot, so cancel() is two array
/// reads and a state flip — O(1), no hash sets — and a stale id from a
/// recycled slot is rejected by its generation mismatch. Cancellation is
/// lazy: the heap node of a cancelled event is skipped (and its slot
/// recycled) when it reaches the top, though the handler itself is
/// destroyed eagerly at cancel() so captures are released immediately.
/// Handlers are InlineHandler — a 48-byte small-buffer callable — so
/// typical capture sets schedule without touching the allocator.
///
/// Observability: attach an obs::TraceSink to log every event lifecycle
/// transition ("sim.event.scheduled" / "sim.event.fired" /
/// "sim.event.cancelled", see DESIGN.md "Observability"). With no sink
/// attached the hooks cost one branch per transition and nothing else.
/// Trace records carry the event's schedule sequence number (field "seq"),
/// which is independent of the slot/generation id encoding — traces are a
/// pure function of the schedule/cancel/fire history, not of arena layout.

namespace ntco::sim {

/// Opaque handle for a scheduled event; usable to cancel it. Packs
/// (generation << 32) | slot; treat as opaque. Value 0 is a real id (slot
/// 0, generation 0) — callers that need an "absent event" value must use
/// kNoEvent, never 0.
using EventId = std::uint64_t;

/// Reserved id no schedule_*() call ever returns: its slot field is the
/// arena's reserved non-slot, which acquire_slot() can never hand out.
/// cancel(kNoEvent) is a safe no-op that returns false.
inline constexpr EventId kNoEvent = 0xFFFFFFFFu;

/// Handler storage for scheduled events: move-only with a 48-byte inline
/// buffer (covers this + shared_ptr + an id without allocating) and heap
/// fallback for larger captures. Move-only captures are allowed.
using InlineHandler = InlineFunction<void(), 48>;

/// Single-threaded discrete-event simulator.
///
/// Usage:
///   Simulator sim;
///   sim.schedule_after(Duration::millis(5), [&]{ ... });
///   sim.run();
class Simulator : public obs::TraceClock {
 public:
  using Handler = InlineHandler;

  /// Current simulated time. Monotonically non-decreasing.
  [[nodiscard]] TimePoint now() const { return now_; }

  /// obs::TraceClock: lets traced components that hold no Simulator
  /// reference (network links) timestamp their records.
  [[nodiscard]] TimePoint trace_now() const override { return now_; }

  /// Attaches a sink receiving every event lifecycle record; nullptr
  /// detaches. The sink must outlive the simulator or be detached first.
  void set_trace_sink(obs::TraceSink* sink) { trace_ = sink; }
  [[nodiscard]] obs::TraceSink* trace_sink() const { return trace_; }

  /// Schedules `fn` at absolute time `t`. Pre: t >= now().
  EventId schedule_at(TimePoint t, Handler fn) {
    NTCO_EXPECTS(t >= now_);
    NTCO_EXPECTS(fn != nullptr);
    const std::uint32_t slot = acquire_slot();
    Slot& s = slot_ref(slot);
    const std::uint64_t seq = next_seq_++;
    s.seq = seq;
    s.fn = std::move(fn);
    meta_[slot] |= kPending;  // state was Free (0); generation unchanged
    heap_push(HeapNode{t, static_cast<std::uint32_t>(seq), slot});
    ++pending_count_;
    if (trace_)
      obs::emit(trace_, now_, "sim.event.scheduled", {{"seq", seq}, {"at", t}});
    return make_id(slot, meta_[slot] >> kStateBits);
  }

  /// Schedules `fn` after a non-negative delay from now.
  EventId schedule_after(Duration d, Handler fn) {
    NTCO_EXPECTS(!d.is_negative());
    return schedule_at(now_ + d, std::move(fn));
  }

  /// Cancels a pending event in O(1). Returns false if the event already
  /// fired, was already cancelled, or never existed — a stale id whose
  /// slot has been recycled fails the generation check and is rejected.
  /// The handler (and its captures) is destroyed immediately; the heap
  /// node drains lazily.
  bool cancel(EventId id) {
    const std::uint32_t slot = slot_of(id);
    if (slot >= slot_count_) return false;
    const std::uint32_t m = meta_[slot];
    if ((m & kStateMask) != kPending || (m >> kStateBits) != generation_of(id))
      return false;
    meta_[slot] = (m & ~kStateMask) | kCancelled;
    Slot& s = slot_ref(slot);
    s.fn.reset();
    --pending_count_;
    if (trace_) obs::emit(trace_, now_, "sim.event.cancelled", {{"seq", s.seq}});
    return true;
  }

  /// Number of events still pending (excludes cancelled ones).
  [[nodiscard]] std::size_t pending() const { return pending_count_; }

  /// Ids of all pending events, in scheduling order. Produced by scanning
  /// the arena meta words (slot order — deterministic, but arbitrary
  /// relative to schedule time once slots recycle) and sorting by each
  /// event's schedule sequence number, so the output order matches the
  /// old sequential-id kernel exactly.
  [[nodiscard]] std::vector<EventId> pending_event_ids() const {
    std::vector<std::pair<std::uint64_t, EventId>> by_seq;
    by_seq.reserve(pending_count_);  // ntco-lint: allow(R6) introspection helper, never called from the event loop
    for (std::uint32_t slot = 0; slot < slot_count_; ++slot) {
      const std::uint32_t m = meta_[slot];
      if ((m & kStateMask) == kPending)
        by_seq.emplace_back(slot_ref(slot).seq, make_id(slot, m >> kStateBits));  // ntco-lint: allow(R6) introspection helper, never called from the event loop
    }
    std::sort(by_seq.begin(), by_seq.end());
    std::vector<EventId> ids;
    ids.reserve(by_seq.size());  // ntco-lint: allow(R6) introspection helper, never called from the event loop
    for (const auto& [seq, id] : by_seq) ids.push_back(id);
    return ids;
  }

  /// Fires the earliest pending event. Returns false if none remain.
  bool step() {
    while (!heap_.empty()) {
      const HeapNode top = heap_[0];
      if ((meta_[top.slot] & kStateMask) == kCancelled) {
        heap_pop();
        release_slot(top.slot);
        continue;
      }
      now_ = top.time;
      Slot& s = slot_ref(top.slot);
      const std::uint64_t seq = s.seq;
      // Move the handler out before popping: it may schedule new events,
      // which can grow the arena and the heap, so it must not be invoked
      // through arena or heap storage.
      Handler fn = std::move(s.fn);
      heap_pop();
      release_slot(top.slot);
      --pending_count_;
      if (trace_) obs::emit(trace_, now_, "sim.event.fired", {{"seq", seq}});
      fn();
      return true;
    }
    return false;
  }

  /// Runs until no events remain. Returns the number of events fired.
  std::size_t run() {
    std::size_t n = 0;
    while (step()) ++n;
    return n;
  }

  /// Fires every event with time <= `horizon`, then advances the clock to
  /// `horizon`. Returns the number of events fired.
  std::size_t run_until(TimePoint horizon) {
    NTCO_EXPECTS(horizon >= now_);
    std::size_t n = 0;
    for (;;) {
      drop_cancelled_head();
      if (heap_.empty() || heap_[0].time > horizon) break;
      if (step()) ++n;
    }
    now_ = horizon;
    return n;
  }

  /// Time of the earliest pending (non-cancelled) event.
  /// Pre: pending() > 0.
  [[nodiscard]] TimePoint next_event_time() {
    drop_cancelled_head();
    NTCO_EXPECTS(!heap_.empty());
    return heap_[0].time;
  }

 private:
  /// Arena slot: exactly one cache line (48-byte handler buffer + vtable
  /// pointer + seq). `seq` is the global schedule counter value at
  /// schedule time — the FIFO tie-break and the value traces report —
  /// and doubles as the next-free link while the slot sits on the free
  /// list (a free slot has no seq).
  struct alignas(64) Slot {
    Handler fn;
    std::uint64_t seq = 0;
  };
  static_assert(sizeof(Slot) == 64,
                "Slot is sized and aligned to one cache line; if the "
                "InlineHandler capacity changes, revisit this layout");

  /// Ready-queue node (16 bytes). Carries the time and the low 32 bits of
  /// the schedule seq, so ordering never touches the arena; `slot`
  /// locates the handler on pop.
  struct HeapNode {
    TimePoint time;
    std::uint32_t seq_lo;
    std::uint32_t slot;
  };

  // Per-slot meta word: (generation << 2) | state. The generation counts
  // slot recycles (bumped at release), which invalidates every
  // outstanding EventId minted for a previous occupant — ABA protection,
  // wrapping after 2^30 reuses of one slot, far beyond any simulated
  // workload. Packing state into the same word keeps the cancel fast
  // path (bounds check + state check + generation check) to a single
  // 4-byte load.
  static constexpr std::uint32_t kFree = 0;
  static constexpr std::uint32_t kPending = 1;
  static constexpr std::uint32_t kCancelled = 2;
  static constexpr std::uint32_t kStateBits = 2;
  static constexpr std::uint32_t kStateMask = (1u << kStateBits) - 1;

  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;
  // Chunked arena: 512 slots per chunk. Growth allocates one chunk and
  // never relocates existing slots, so live handlers are move-free for
  // the arena's whole lifetime (a vector-of-Slot would move every live
  // handler through its type-erased relocate on each capacity doubling —
  // the dominant cost of the schedule path for cold arenas).
  static constexpr std::uint32_t kChunkShift = 9;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;

  static_assert(std::is_unsigned_v<EventId>,
                "EventId must be an unsigned integer: it packs "
                "(generation << 32) | slot, pending_event_ids() sorts "
                "extracted ids, and the (time, seq) event ordering relies "
                "on well-defined unsigned comparison");

  static EventId make_id(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<EventId>(generation) << 32) | slot;
  }
  static std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
  }
  static std::uint32_t generation_of(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }

  /// Heap order: (time, seq). Nodes carry only the low 32 bits of seq, so
  /// the tie-break is the wraparound-aware sequence comparison (RFC 1982
  /// style): exact as long as fewer than 2^31 events share one timestamp,
  /// which memory rules out long before it could happen.
  static bool earlier(const HeapNode& a, const HeapNode& b) {
    if (a.time != b.time) return a.time < b.time;
    return static_cast<std::int32_t>(a.seq_lo - b.seq_lo) < 0;
  }

  [[nodiscard]] Slot& slot_ref(std::uint32_t slot) {
    return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }
  [[nodiscard]] const Slot& slot_ref(std::uint32_t slot) const {
    return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }

  std::uint32_t acquire_slot() {
    if (free_head_ != kNoSlot) {
      const std::uint32_t slot = free_head_;
      free_head_ = static_cast<std::uint32_t>(slot_ref(slot).seq);
      return slot;
    }
    NTCO_EXPECTS(slot_count_ < kNoSlot);  // arena is 2^32-1 slots max
    if ((slot_count_ & (kChunkSize - 1)) == 0)
      chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));  // ntco-lint: allow(R6) amortized arena growth: one chunk per kChunkSize slots, none once the slot free-list warms up
    meta_.push_back(kFree);
    return slot_count_++;
  }

  void release_slot(std::uint32_t slot) {
    Slot& s = slot_ref(slot);
    s.fn.reset();
    s.seq = free_head_;  // thread into the free list
    meta_[slot] = ((meta_[slot] >> kStateBits) + 1) << kStateBits;  // -> Free
    free_head_ = slot;
  }

  // 4-ary implicit heap: shallower than binary (log4 vs log2 levels), and
  // the 4-child minimum scan stays within one cache line of HeapNodes —
  // measurably faster for the sift-down-heavy pop pattern here. Both sifts
  // shift nodes into the hole and place the moving node once at the end,
  // instead of swapping at every level (half the data movement).
  void heap_push(HeapNode node) {
    heap_.push_back(node);  // ntco-lint: allow(R6) amortized: heap capacity plateaus at peak pending events, then pushes never allocate
    std::size_t i = heap_.size() - 1;
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!earlier(node, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = node;
  }

  void heap_pop() {
    const HeapNode node = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n == 0) return;
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t last = std::min(first + 4, n);
      for (std::size_t c = first + 1; c < last; ++c)
        if (earlier(heap_[c], heap_[best])) best = c;
      if (!earlier(heap_[best], node)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = node;
  }

  void drop_cancelled_head() {
    while (!heap_.empty()) {
      const std::uint32_t slot = heap_[0].slot;
      if ((meta_[slot] & kStateMask) != kCancelled) break;
      heap_pop();
      release_slot(slot);
    }
  }

  TimePoint now_;
  std::uint64_t next_seq_ = 0;
  std::size_t pending_count_ = 0;
  std::uint32_t free_head_ = kNoSlot;
  std::uint32_t slot_count_ = 0;
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::vector<std::uint32_t> meta_;
  std::vector<HeapNode> heap_;
  obs::TraceSink* trace_ = nullptr;
};

}  // namespace ntco::sim
