#include "ntco/fabric/fabric.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ntco/common/contracts.hpp"

namespace ntco::fabric {

namespace {

/// Fair instantaneous rate over `segs`: the path's access cap bottlenecked
/// by each segment's equal split among the flows ahead plus the new flow.
/// `ahead` holds the not-yet-departed committed flow counts per segment.
double instantaneous_bps(const std::vector<double>& capacities,
                         const std::vector<std::size_t>& ahead,
                         double access_bps) {
  double bps = access_bps;
  for (std::size_t i = 0; i < capacities.size(); ++i) {
    bps = std::min(bps,
                   capacities[i] / static_cast<double>(ahead[i] + 1));
  }
  return bps;
}

constexpr std::string_view direction_label(net::LinkDirection dir) {
  return dir == net::LinkDirection::Up ? "up" : "down";
}

}  // namespace

Fabric::Fabric(sim::Simulator& sim, FabricConfig cfg)
    : sim_(sim), cfg_(cfg) {
  NTCO_EXPECTS(cfg_.cubic_ramp_rtts > 0.0);
}

SegmentId Fabric::add_segment(SegmentSpec spec) {
  NTCO_EXPECTS(!spec.capacity.is_zero());
  NTCO_EXPECTS(!spec.latency.is_negative());
  const auto id = static_cast<SegmentId>(segments_.size());
  segments_.push_back(Segment{std::move(spec), {}, {}});  // ntco-lint: allow(R6) topology construction, runs before any flow is served
  return id;
}

const SegmentSpec& Fabric::segment(SegmentId id) const {
  NTCO_EXPECTS(id < segments_.size());
  return segments_[id].spec;
}

const SegmentStats& Fabric::segment_stats(SegmentId id) const {
  NTCO_EXPECTS(id < segments_.size());
  return segments_[id].stats;
}

std::unique_ptr<FabricPath> Fabric::attach(const net::PathSpec& spec,
                                           Route route) {
  NTCO_EXPECTS(!spec.up.rate.is_zero() && !spec.down.rate.is_zero());
  for (const SegmentId id : route.up) NTCO_EXPECTS(id < segments_.size());
  for (const SegmentId id : route.down) NTCO_EXPECTS(id < segments_.size());
  return std::unique_ptr<FabricPath>(  // ntco-lint: allow(R6) one-time path attach (private ctor bars make_unique), not the per-flow path
      new FabricPath(*this, spec, std::move(route)));
}

void Fabric::advance(Segment& seg, TimePoint now) {
  while (!seg.departures.empty() && *seg.departures.begin() <= now) {
    seg.departures.erase(seg.departures.begin());
    ++seg.stats.flows_departed;
    ++stats_.reshare_events;  // a departure re-shares the segment
  }
}

std::size_t Fabric::active_flows(SegmentId id) {
  NTCO_EXPECTS(id < segments_.size());
  Segment& seg = segments_[id];
  advance(seg, sim_.now());
  return seg.departures.size();
}

DataRate Fabric::fair_share(SegmentId id) {
  NTCO_EXPECTS(id < segments_.size());
  Segment& seg = segments_[id];
  advance(seg, sim_.now());
  const std::size_t n = std::max<std::size_t>(1, seg.departures.size());
  return DataRate::bits_per_second(seg.spec.capacity.count_bps() / n);
}

double Fabric::cubic_drain_seconds(double bits, double bps,
                                   double ramp_seconds) {
  // Cubic window ramp r(t) = clamp01(1 + ((t - K)/K)^3): zero share at
  // admission, fair share at t = K, flat after. Served volume by time t is
  // bps * R(t) with R(t) = t + ((t-K)^4 - K^4) / (4 K^3) on [0, K]
  // (so R(K) = 3K/4) and R(t) = 3K/4 + (t - K) afterwards. Solve
  // bits = bps * R(t): closed form past the plateau, deterministic
  // fixed-iteration bisection before it.
  const double target = bits / bps;  // full-rate seconds of service needed
  const double k = ramp_seconds;
  if (k <= 0.0) return target;
  const double plateau = 0.75 * k;  // R(K)
  if (target >= plateau) return k + (target - plateau);
  double lo = 0.0;
  double hi = k;
  for (int i = 0; i < 64; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double dt = mid - k;
    const double served =
        mid + (dt * dt * dt * dt - k * k * k * k) / (4.0 * k * k * k);
    if (served < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

Duration Fabric::admit(const std::vector<SegmentId>& segs, DataSize bytes,
                       DataRate access_cap, Duration ramp,
                       const std::string& path_name, net::LinkDirection dir) {
  NTCO_EXPECTS(!bytes.is_zero());
  NTCO_EXPECTS(!access_cap.is_zero());
  const TimePoint now = sim_.now();
  for (const SegmentId id : segs) advance(segments_[id], now);

  const std::uint64_t flow = next_flow_++;
  ++stats_.flows;
  ++stats_.reshare_events;  // the arrival itself re-shares its route

  // Route-local view of the committed departures: per-segment cursor over
  // the ordered multiset plus the count of flows still ahead. The scratch
  // members are reused across admissions; they grow to the widest route
  // once and every later admission is allocation-free.
  const std::size_t width = segs.size();
  scratch_capacity_.resize(width);  // ntco-lint: allow(R6) amortized: grows to the widest route once, then admissions reuse the capacity
  scratch_cursor_.resize(width);  // ntco-lint: allow(R6) amortized: grows to the widest route once, then admissions reuse the capacity
  scratch_last_.resize(width);  // ntco-lint: allow(R6) amortized: grows to the widest route once, then admissions reuse the capacity
  scratch_ahead_.resize(width);  // ntco-lint: allow(R6) amortized: grows to the widest route once, then admissions reuse the capacity
  std::vector<double>& capacities = scratch_capacity_;
  auto& cursor = scratch_cursor_;
  auto& last = scratch_last_;
  auto& ahead = scratch_ahead_;
  for (std::size_t i = 0; i < width; ++i) {
    const Segment& seg = segments_[segs[i]];
    capacities[i] = static_cast<double>(seg.spec.capacity.count_bps());
    cursor[i] = seg.departures.begin();
    last[i] = seg.departures.end();
    ahead[i] = seg.departures.size();
  }
  const double access_bps = static_cast<double>(access_cap.count_bps());

  double remaining_bits = static_cast<double>(bytes.count_bits());
  double elapsed = 0.0;  // seconds since admission
  const double share0_bps = instantaneous_bps(capacities, ahead, access_bps);
  double bps = share0_bps;

  if (cfg_.sharing == SharingModel::CubicAimd) {
    // Cubic mode ramps against the admission snapshot of the fair share;
    // departure stepping is skipped (the ramp dominates short flows, and
    // long flows converge to the snapshot share).
    elapsed = cubic_drain_seconds(remaining_bits, bps, ramp.to_seconds());
    remaining_bits = 0.0;
  } else {
    // Piecewise-constant integration over the committed departures of the
    // flows ahead, amortised at max_reshare_steps.
    std::size_t steps = 0;
    while (remaining_bits > 0.0) {
      // Earliest committed departure ahead of the integration point.
      TimePoint breakpoint = TimePoint::at(Duration::max());
      bool have_breakpoint = false;
      for (std::size_t i = 0; i < width; ++i) {
        if (cursor[i] != last[i] &&
            (!have_breakpoint || *cursor[i] < breakpoint)) {
          breakpoint = *cursor[i];
          have_breakpoint = true;
        }
      }
      if (!have_breakpoint) break;  // nothing ahead: drain at current rate
      const double window = (breakpoint - now).to_seconds() - elapsed;
      const double drained = bps * window;
      if (drained >= remaining_bits) break;  // finishes before the breakpoint
      if (steps >= cfg_.max_reshare_steps) {
        // Amortisation: stop stepping and hold the current share for the
        // tail even though departures ahead would have raised it.
        ++stats_.amortized_tails;
        break;
      }
      remaining_bits -= drained;
      elapsed += window;
      for (std::size_t i = 0; i < width; ++i) {
        while (cursor[i] != last[i] && *cursor[i] <= breakpoint) {
          ++cursor[i];
          --ahead[i];
        }
      }
      ++steps;
      ++stats_.reshare_steps;
      bps = instantaneous_bps(capacities, ahead, access_bps);
    }
  }

  // Final drain at the held rate; ceil to a whole microsecond exactly like
  // DataSize / DataRate so an uncontended fabric reproduces FixedLink math.
  const double total_us = elapsed * 1e6 + remaining_bits / bps * 1e6;
  const Duration drain =
      Duration::micros(static_cast<std::int64_t>(std::ceil(total_us)));
  const TimePoint finish = now + drain;

  for (const SegmentId id : segs) {
    Segment& seg = segments_[id];
    seg.departures.insert(finish);  // ntco-lint: allow(R6) departure book, one node per in-flight flow; pooled-node multiset is a ROADMAP item
    ++seg.stats.flows_admitted;
    seg.stats.bytes_carried += bytes;
    seg.stats.peak_flows = std::max(seg.stats.peak_flows,
                                    seg.departures.size());
  }

  if (trace_ != nullptr) {
    obs::emit(trace_, now, "fabric.flow.start",
              {{"flow", flow},
               {"path", std::string_view(path_name)},
               {"dir", direction_label(dir)},
               {"bytes", bytes},
               {"segments", static_cast<std::uint64_t>(width)},
               {"share_bps",
                static_cast<std::uint64_t>(std::llround(share0_bps))},
               {"dur", drain}});
    obs::TraceSink* sink = trace_;
    sim_.schedule_at(finish, [this, sink, flow, bytes, drain] {
      // The sink captured at admission, not trace_, so detaching mid-flight
      // never drops a started flow's finish record.
      obs::emit(sink, sim_.now(), "fabric.flow.finish",
                {{"flow", flow}, {"bytes", bytes}, {"dur", drain}});
    });
  }
  return drain;
}

Duration FabricPath::one_way(const std::vector<SegmentId>& segs,
                             const net::DirectionSpec& dspec,
                             net::LinkDirection dir, DataSize size) {
  Duration latency = dspec.latency;
  for (const SegmentId id : segs) latency += fabric_.segment(id).latency;
  if (size.is_zero()) return latency;  // headers pay latency, not capacity
  const Duration rtt = spec_.up.latency + spec_.down.latency;
  const Duration ramp = std::max(
      Duration::micros(1), rtt * fabric_.config().cubic_ramp_rtts);
  return latency + fabric_.admit(segs, size, dspec.rate, ramp, spec_.name,
                                 dir);
}

}  // namespace ntco::fabric
