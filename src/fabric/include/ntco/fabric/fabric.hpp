#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "ntco/common/units.hpp"
#include "ntco/net/transport.hpp"
#include "ntco/obs/trace.hpp"
#include "ntco/sim/simulator.hpp"

/// \file fabric.hpp
/// Flow-level shared-network model: named capacity segments (cell uplink,
/// edge LAN, WAN) on which transfers from many UEs contend.
///
/// The paper's offload crossover assumes each UE sees a private link; at
/// population scale the access and aggregation legs are shared, and
/// contention is what actually moves the edge-vs-serverless break-even
/// point. The fabric models that with a fluid flow abstraction:
///
///  - A transfer becomes a *flow* that occupies every segment along its
///    route from admission until its committed finish time.
///  - Capacity is split max-min fair: at any instant a flow's rate is the
///    minimum over its route of `capacity_s / n_s(t)` (equal split among
///    the flows active on segment s), additionally capped by the path's
///    own nominal access rate. A Cubic-style AIMD ramp can be enabled
///    instead (SharingModel::CubicAimd), where a new flow climbs to its
///    fair share along a cubic window curve.
///  - Bandwidth is re-shared on every arrival and departure: the admission
///    integrator walks the committed departures of the flows ahead of it
///    (piecewise-constant rates between departures) and each expiry or
///    arrival updates the per-segment active set.
///
/// Determinism & the synchronous Transport contract. FabricPath implements
/// net::Transport, whose timing calls return a Duration at admission time.
/// The fabric therefore *commits* each flow's finish time when it is
/// admitted, computed against the flows active at that instant and their
/// already-committed departures. Later arrivals slow nobody retroactively —
/// they see the earlier flows ahead of them instead. This admission-order
/// fluid model is deterministic (a pure function of the admission
/// sequence), byte-stable across runs, and exact whenever no new flow
/// arrives before an in-flight one drains; under churn it is a documented
/// approximation that consistently favours earlier arrivals (FIFO-fair,
/// like the real world's slow-start disadvantage for newcomers).
///
/// Performance. Per-segment active sets are ordered containers
/// (std::multiset keyed by committed departure time — lint R2 clean), so
/// admission costs O(route · log flows). The integrator is amortised: it
/// steps at most `FabricConfig::max_reshare_steps` committed departures
/// before holding the then-current share constant for the remainder
/// (counted in FabricStats::amortized_tails), so 100k+ concurrent flows
/// admit in bounded time instead of O(flows) each.
///
/// Tracing. Each flow emits "fabric.flow.start" at admission and
/// "fabric.flow.finish" at its committed finish (scheduled through the
/// simulator, so same-timestamp records keep schedule order and artifacts
/// are byte-deterministic). Field lists are documented in DESIGN.md
/// ("Observability").

namespace ntco::fabric {

/// Handle to one capacity segment.
using SegmentId = std::uint32_t;

/// How concurrent flows split a segment's capacity.
enum class SharingModel : std::uint8_t {
  /// Equal instantaneous split among active flows, bottlenecked over the
  /// route (max-min fair share). The default.
  MaxMinFairShare,
  /// As above, but a new flow's rate climbs to the fair share along a
  /// cubic window curve (TCP-Cubic-style AIMD ramp) instead of jumping
  /// there instantly — short flows never reach full share.
  CubicAimd,
};

/// Fabric-wide knobs.
struct FabricConfig {
  SharingModel sharing = SharingModel::MaxMinFairShare;
  /// CubicAimd only: RTT multiples a fresh flow needs to reach its fair
  /// share (the cubic curve's plateau point K).
  double cubic_ramp_rtts = 8.0;
  /// Admission integrator amortisation: committed-departure breakpoints
  /// stepped per admission before the remaining bytes drain at the
  /// then-current share. Bounds admission cost under extreme churn.
  std::size_t max_reshare_steps = 64;
};

/// Static description of one shared segment. Segments are unidirectional
/// resources; model a duplex hop as one ".up" and one ".down" segment.
struct SegmentSpec {
  std::string name;
  DataRate capacity;
  /// Propagation latency added to every traversal of this segment (on top
  /// of the attached path's own access latency).
  Duration latency;
};

/// Per-segment accounting.
struct SegmentStats {
  std::uint64_t flows_admitted = 0;
  std::uint64_t flows_departed = 0;
  DataSize bytes_carried;
  std::size_t peak_flows = 0;  ///< max concurrently active flows observed
};

/// Fabric-wide accounting.
struct FabricStats {
  std::uint64_t flows = 0;
  /// Re-share points observed: one per admission plus one per departure.
  std::uint64_t reshare_events = 0;
  /// Committed-departure breakpoints the admission integrator stepped.
  std::uint64_t reshare_steps = 0;
  /// Admissions that hit max_reshare_steps and amortised their tail.
  std::uint64_t amortized_tails = 0;
};

/// Segment route of one path, per direction (UE -> remote order for `up`,
/// remote -> UE for `down`). Routes may be empty (direction rides only the
/// path's private access figures).
struct Route {
  std::vector<SegmentId> up;
  std::vector<SegmentId> down;
};

class FabricPath;

/// The shared fabric: a set of named segments plus the flow bookkeeping.
/// Non-copyable; lives alongside one sim::Simulator.
class Fabric {
 public:
  explicit Fabric(sim::Simulator& sim, FabricConfig cfg = {});

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Registers a segment. Pre: nonzero capacity, non-negative latency.
  SegmentId add_segment(SegmentSpec spec);

  [[nodiscard]] const SegmentSpec& segment(SegmentId id) const;
  [[nodiscard]] std::size_t segment_count() const { return segments_.size(); }

  /// Attaches a UE-side path: `spec` supplies the private access figures
  /// (nominal rate cap, latency, name), `route` the shared segments each
  /// direction traverses. The returned FabricPath is a net::Transport and
  /// must not outlive the fabric.
  [[nodiscard]] std::unique_ptr<FabricPath> attach(const net::PathSpec& spec,
                                                   Route route);

  /// Flows active on `id` right now (expired committed departures are
  /// retired first).
  [[nodiscard]] std::size_t active_flows(SegmentId id);

  /// Instantaneous equal split a flow on `id` receives right now
  /// (capacity when idle).
  [[nodiscard]] DataRate fair_share(SegmentId id);

  /// Attaches the flow tracer ("fabric.flow.start"/"fabric.flow.finish");
  /// records are stamped with the simulator clock. Null detaches.
  void set_trace(obs::TraceSink* sink) { trace_ = sink; }

  [[nodiscard]] const FabricStats& stats() const { return stats_; }
  [[nodiscard]] const SegmentStats& segment_stats(SegmentId id) const;
  [[nodiscard]] const FabricConfig& config() const { return cfg_; }

 private:
  friend class FabricPath;

  struct Segment {
    SegmentSpec spec;
    /// Committed departure times of the flows active on this segment,
    /// ordered — the indexed structure every re-share reads.
    std::multiset<TimePoint> departures;
    SegmentStats stats;
  };

  /// Retires committed departures at or before `now`.
  void advance(Segment& seg, TimePoint now);

  /// Admits a flow of `bytes` over `segs` now; returns its drain time
  /// (serialisation under contention; excludes propagation latency).
  /// `access_cap` caps the rate (the path's own nominal figure); `ramp`
  /// is the CubicAimd plateau time (ignored under MaxMinFairShare).
  Duration admit(const std::vector<SegmentId>& segs, DataSize bytes,
                 DataRate access_cap, Duration ramp,
                 const std::string& path_name, net::LinkDirection dir);

  /// Drain time of `bits` at constant `bps` starting after `elapsed` of
  /// cubic ramp-up (SharingModel::CubicAimd).
  [[nodiscard]] static double cubic_drain_seconds(double bits, double bps,
                                                  double ramp_seconds);

  sim::Simulator& sim_;
  FabricConfig cfg_;
  std::vector<Segment> segments_;
  obs::TraceSink* trace_ = nullptr;
  FabricStats stats_;
  std::uint64_t next_flow_ = 0;

  /// admit() scratch, hoisted off the per-flow path: sized to the route
  /// width, so after the first admission over the widest route no
  /// admission allocates.
  std::vector<double> scratch_capacity_;
  std::vector<std::multiset<TimePoint>::const_iterator> scratch_cursor_;
  std::vector<std::multiset<TimePoint>::const_iterator> scratch_last_;
  std::vector<std::size_t> scratch_ahead_;
};

/// Flow-backed, contention-aware Transport over a Fabric. Created by
/// Fabric::attach(); core::OffloadController, the platforms, and the
/// benches use it interchangeably with net::NetworkPath.
class FabricPath final : public net::Transport {
 public:
  [[nodiscard]] const std::string& name() const override {
    return spec_.name;
  }
  [[nodiscard]] const net::PathSpec& spec() const override { return spec_; }
  [[nodiscard]] const Route& route() const { return route_; }

  /// One-way times: access latency + per-segment propagation + drain time
  /// under the fabric's current contention. Zero-size transfers pay the
  /// full one-way latency and nothing else (Transport timing contract):
  /// a header occupies no capacity, so no flow is admitted.
  [[nodiscard]] Duration uplink_time(DataSize size) override {
    return one_way(route_.up, spec_.up, net::LinkDirection::Up, size);
  }
  [[nodiscard]] Duration downlink_time(DataSize size) override {
    return one_way(route_.down, spec_.down, net::LinkDirection::Down, size);
  }

  /// Forwards to Fabric::set_trace — flow records are fabric-wide and
  /// stamped with the fabric's simulator clock; `clock` is unused.
  void set_trace(obs::TraceSink* sink,
                 const obs::TraceClock* /*clock*/) override {
    fabric_.set_trace(sink);
  }

 private:
  friend class Fabric;

  FabricPath(Fabric& fabric, net::PathSpec spec, Route route)
      : fabric_(fabric), spec_(std::move(spec)), route_(std::move(route)) {}

  [[nodiscard]] Duration one_way(const std::vector<SegmentId>& segs,
                                 const net::DirectionSpec& dspec,
                                 net::LinkDirection dir, DataSize size);

  Fabric& fabric_;
  net::PathSpec spec_;
  Route route_;
};

}  // namespace ntco::fabric
