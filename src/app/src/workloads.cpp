#include "ntco/app/workloads.hpp"

namespace ntco::app::workloads {

namespace {

Component comp(std::string name, std::uint64_t megacycles, std::uint64_t mem_mb,
               std::uint64_t image_mb, bool pinned, double parallel = 0.8) {
  return Component{std::move(name), Cycles::mega(megacycles),
                   DataSize::megabytes(mem_mb), DataSize::megabytes(image_mb),
                   pinned, parallel};
}

}  // namespace

TaskGraph photo_backup() {
  TaskGraph g("photo-backup");
  const auto capture = g.add_component(comp("capture", 20, 64, 5, true));
  const auto resize = g.add_component(comp("resize", 900, 256, 20, false));
  const auto ocr = g.add_component(comp("ocr", 6'500, 512, 80, false, 0.85));
  const auto faces = g.add_component(comp("face-index", 9'000, 768, 120, false, 0.9));
  const auto dedupe = g.add_component(comp("dedupe", 1'200, 256, 15, false));
  const auto gallery = g.add_component(comp("gallery-update", 60, 96, 5, true));
  g.add_flow(capture, resize, DataSize::megabytes(4));   // raw photo
  g.add_flow(resize, ocr, DataSize::kilobytes(900));     // normalised image
  g.add_flow(resize, faces, DataSize::kilobytes(900));
  g.add_flow(ocr, dedupe, DataSize::kilobytes(40));      // extracted text
  g.add_flow(faces, dedupe, DataSize::kilobytes(25));    // embeddings
  g.add_flow(dedupe, gallery, DataSize::kilobytes(12));  // index delta
  return g;
}

TaskGraph video_transcode() {
  TaskGraph g("video-transcode");
  const auto record = g.add_component(comp("record", 40, 128, 5, true));
  const auto demux = g.add_component(comp("demux", 700, 256, 15, false, 0.3));
  const auto decode = g.add_component(comp("decode", 14'000, 768, 40, false, 0.9));
  const auto filter = g.add_component(comp("filter", 8'000, 512, 30, false, 0.95));
  const auto encode = g.add_component(comp("encode", 30'000, 1024, 50, false, 0.9));
  const auto publish = g.add_component(comp("publish", 80, 96, 5, true));
  g.add_flow(record, demux, DataSize::megabytes(120));  // 1 min 1080p clip
  g.add_flow(demux, decode, DataSize::megabytes(118));
  g.add_flow(decode, filter, DataSize::megabytes(60));  // sampled frames
  g.add_flow(filter, encode, DataSize::megabytes(60));
  g.add_flow(encode, publish, DataSize::megabytes(35));  // 720p output
  return g;
}

TaskGraph ml_batch_training() {
  TaskGraph g("ml-batch-training");
  const auto collect = g.add_component(comp("collect", 120, 128, 5, true));
  const auto featurise = g.add_component(comp("featurise", 2'500, 384, 35, false));
  const auto train = g.add_component(comp("train", 180'000, 2048, 150, false, 0.95));
  const auto validate = g.add_component(comp("validate", 9'000, 512, 40, false, 0.9));
  const auto compress = g.add_component(comp("compress-model", 1'500, 256, 20, false));
  const auto install = g.add_component(comp("install-model", 90, 96, 5, true));
  g.add_flow(collect, featurise, DataSize::megabytes(6));   // event log
  g.add_flow(featurise, train, DataSize::megabytes(2));     // feature matrix
  g.add_flow(train, validate, DataSize::megabytes(8));      // checkpoint
  g.add_flow(train, compress, DataSize::megabytes(8));
  g.add_flow(validate, compress, DataSize::kilobytes(4));   // metrics gate
  g.add_flow(compress, install, DataSize::megabytes(2));    // quantised model
  return g;
}

TaskGraph nightly_etl() {
  TaskGraph g("nightly-etl");
  const auto dump = g.add_component(comp("dump", 150, 128, 5, true));
  const auto clean = g.add_component(comp("clean", 3'000, 512, 25, false));
  const auto join = g.add_component(comp("join", 7'500, 1024, 35, false, 0.85));
  const auto aggregate = g.add_component(comp("aggregate", 5'500, 768, 30, false));
  const auto forecast = g.add_component(comp("forecast", 22'000, 1024, 90, false, 0.7));
  const auto render = g.add_component(comp("render-report", 2'000, 384, 45, false));
  const auto notify = g.add_component(comp("notify", 30, 64, 5, true));
  g.add_flow(dump, clean, DataSize::megabytes(25));
  g.add_flow(clean, join, DataSize::megabytes(18));
  g.add_flow(join, aggregate, DataSize::megabytes(9));
  g.add_flow(aggregate, forecast, DataSize::megabytes(2));
  g.add_flow(aggregate, render, DataSize::megabytes(3));
  g.add_flow(forecast, render, DataSize::kilobytes(600));
  g.add_flow(render, notify, DataSize::kilobytes(300));
  return g;
}

std::vector<TaskGraph> all() {
  std::vector<TaskGraph> v;
  v.push_back(photo_backup());
  v.push_back(video_transcode());
  v.push_back(ml_batch_training());
  v.push_back(nightly_etl());
  return v;
}

}  // namespace ntco::app::workloads
