#include "ntco/app/task_graph.hpp"

#include <deque>

#include "ntco/common/error.hpp"

namespace ntco::app {

std::vector<ComponentId> TaskGraph::topological_order() const {
  std::vector<std::size_t> indegree(components_.size(), 0);
  for (const auto& f : flows_) ++indegree[f.to];

  std::deque<ComponentId> ready;
  for (ComponentId v = 0; v < components_.size(); ++v)
    if (indegree[v] == 0) ready.push_back(v);

  std::vector<ComponentId> order;
  order.reserve(components_.size());
  while (!ready.empty()) {
    const ComponentId v = ready.front();
    ready.pop_front();
    order.push_back(v);
    for (const std::size_t fi : out_[v]) {
      const ComponentId w = flows_[fi].to;
      if (--indegree[w] == 0) ready.push_back(w);
    }
  }
  if (order.size() != components_.size())
    throw ConfigError("TaskGraph '" + name_ + "' contains a cycle");
  return order;
}

bool TaskGraph::is_dag() const {
  try {
    (void)topological_order();
    return true;
  } catch (const ConfigError&) {
    return false;
  }
}

std::vector<ComponentId> TaskGraph::sources() const {
  std::vector<ComponentId> out;
  for (ComponentId v = 0; v < components_.size(); ++v)
    if (in_[v].empty()) out.push_back(v);
  return out;
}

std::vector<ComponentId> TaskGraph::sinks() const {
  std::vector<ComponentId> out;
  for (ComponentId v = 0; v < components_.size(); ++v)
    if (out_[v].empty()) out.push_back(v);
  return out;
}

Cycles TaskGraph::total_work() const {
  Cycles total;
  for (const auto& c : components_) total += c.work;
  return total;
}

DataSize TaskGraph::total_flow_bytes() const {
  DataSize total;
  for (const auto& f : flows_) total += f.bytes;
  return total;
}

std::size_t TaskGraph::pinned_count() const {
  std::size_t n = 0;
  for (const auto& c : components_)
    if (c.pinned_local) ++n;
  return n;
}

double TaskGraph::compute_to_communication() const {
  const auto bytes = total_flow_bytes();
  NTCO_EXPECTS(!bytes.is_zero());
  return static_cast<double>(total_work().value()) /
         static_cast<double>(bytes.count_bytes());
}

TaskGraph TaskGraph::with_work_scaled(double factor) const {
  NTCO_EXPECTS(factor > 0.0);
  TaskGraph g(name_);
  for (const auto& c : components_) {
    Component scaled = c;
    scaled.work = c.work * factor;
    (void)g.add_component(std::move(scaled));
  }
  for (const auto& f : flows_) g.add_flow(f.from, f.to, f.bytes);
  return g;
}

}  // namespace ntco::app
