#include "ntco/app/arrivals.hpp"

#include <algorithm>
#include <cmath>

#include "ntco/common/contracts.hpp"

namespace ntco::app {

namespace {

/// Simulated hour of day of a time point (tariff/envelope index).
int hour_of(TimePoint t) {
  return static_cast<int>((t.since_origin().count_micros() /
                           3'600'000'000LL) %
                          24);
}

/// Shared emission for one generated arrival.
void observe_arrival(const ArrivalObserver& watch, obs::Counter* jobs,
                     TimePoint at, std::uint64_t seq) {
  if (jobs != nullptr) jobs->add();
  if (watch.trace != nullptr)
    obs::emit(watch.trace, at, "app.arrival.job",
              {{"seq", seq}, {"hour", hour_of(at)}});
}

obs::Counter* jobs_counter(const ArrivalObserver& watch) {
  return watch.metrics == nullptr
             ? nullptr
             : &watch.metrics->counter("app.arrival.jobs");
}

}  // namespace

std::vector<TimePoint> poisson_arrivals(TimePoint start, Duration horizon,
                                        double rate_per_second, Rng& rng,
                                        const ArrivalObserver& watch) {
  NTCO_EXPECTS(rate_per_second > 0.0);
  NTCO_EXPECTS(!horizon.is_negative());
  obs::Counter* jobs = jobs_counter(watch);
  std::vector<TimePoint> out;
  const TimePoint end = start + horizon;
  TimePoint t = start;
  std::uint64_t seq = 0;
  for (;;) {
    t = t + Duration::from_seconds(rng.exponential(1.0 / rate_per_second));
    if (t >= end) break;
    observe_arrival(watch, jobs, t, seq++);
    out.push_back(t);
  }
  return out;
}

DiurnalProfile DiurnalProfile::flat() {
  DiurnalProfile p;
  p.weight.fill(1.0);
  return p;
}

DiurnalProfile DiurnalProfile::residential_evening() {
  // Relative weights per hour of day; absolute rates are normalized by the
  // mean, so only the shape matters. Night floor ~0.2, morning shoulder
  // peaking at 08:00, workday trough, dominant evening peak 19:00-23:00.
  DiurnalProfile p;
  p.weight = {0.30, 0.22, 0.18, 0.16, 0.16, 0.20,   // 00-05
              0.40, 0.80, 1.10, 0.95, 0.80, 0.75,   // 06-11
              0.85, 0.80, 0.70, 0.70, 0.80, 1.00,   // 12-17
              1.40, 1.90, 2.20, 2.30, 1.90, 1.00};  // 18-23
  return p;
}

double DiurnalProfile::mean() const {
  double sum = 0.0;
  for (const double w : weight) sum += w;
  return sum / 24.0;
}

double DiurnalProfile::max() const {
  double m = weight[0];
  for (const double w : weight) m = std::max(m, w);
  return m;
}

std::vector<TimePoint> mmpp_arrivals(const MmppConfig& cfg, TimePoint start,
                                     Duration horizon, Rng& rng,
                                     const ArrivalObserver& watch) {
  NTCO_EXPECTS(cfg.mean_rate_per_second > 0.0);
  NTCO_EXPECTS(cfg.burst_multiplier >= 1.0);
  NTCO_EXPECTS(cfg.mean_burst > Duration::zero());
  NTCO_EXPECTS(cfg.mean_calm > Duration::zero());
  NTCO_EXPECTS(!horizon.is_negative());
  const double mean_w = cfg.profile.mean();
  NTCO_EXPECTS(mean_w > 0.0);
  for (const double w : cfg.profile.weight) NTCO_EXPECTS(w >= 0.0);

  obs::Counter* jobs = jobs_counter(watch);
  const TimePoint end = start + horizon;
  const bool modulated = cfg.burst_multiplier > 1.0;

  // Thinning (Lewis & Shedler): candidates at the peak modulated rate,
  // accepted with probability rate(t)/peak. Exact for any piecewise rate
  // as long as the modulating trajectory is drawn independently of the
  // accept draws — the burst chain below advances on candidate times but
  // its sojourns never depend on them.
  const double peak = cfg.mean_rate_per_second * (cfg.profile.max() / mean_w) *
                      cfg.burst_multiplier;

  // Lazy two-state chain: in_burst flips at next_switch, sojourn lengths
  // drawn as the chain is crossed.
  bool in_burst = false;
  TimePoint next_switch =
      start + (modulated
                   ? Duration::from_seconds(
                         rng.exponential(cfg.mean_calm.to_seconds()))
                   : horizon + Duration::hours(1));

  std::vector<TimePoint> out;
  TimePoint t = start;
  std::uint64_t seq = 0;
  for (;;) {
    t = t + Duration::from_seconds(rng.exponential(1.0 / peak));
    if (t >= end) break;
    while (modulated && next_switch <= t) {
      in_burst = !in_burst;
      const double mean_sojourn = in_burst ? cfg.mean_burst.to_seconds()
                                           : cfg.mean_calm.to_seconds();
      next_switch =
          next_switch + Duration::from_seconds(rng.exponential(mean_sojourn));
    }
    const double w = cfg.profile.weight[static_cast<std::size_t>(hour_of(t))];
    const double rate = cfg.mean_rate_per_second * (w / mean_w) *
                        (in_burst ? cfg.burst_multiplier : 1.0);
    if (rng.uniform(0.0, 1.0) * peak >= rate) continue;  // thinned out
    observe_arrival(watch, jobs, t, seq++);
    out.push_back(t);
  }
  return out;
}

std::vector<VehicleSession> vehicular_sessions(const VehicularConfig& cfg,
                                               TimePoint start,
                                               Duration horizon, Rng& rng,
                                               const ArrivalObserver& watch) {
  NTCO_EXPECTS(cfg.vehicles_per_second > 0.0);
  NTCO_EXPECTS(cfg.requests_per_second > 0.0);
  NTCO_EXPECTS(cfg.min_residence > Duration::zero());
  NTCO_EXPECTS(cfg.mean_residence >= cfg.min_residence);
  NTCO_EXPECTS(cfg.bw_sigma >= 0.0);
  NTCO_EXPECTS(cfg.battery_min >= 0.0 && cfg.battery_min <= 1.0);
  NTCO_EXPECTS(!horizon.is_negative());

  obs::Counter* jobs = jobs_counter(watch);
  const TimePoint end = start + horizon;
  std::vector<VehicleSession> out;
  TimePoint enter = start;
  std::uint64_t vehicle = 0;
  std::uint64_t seq = 0;
  for (;;) {
    enter = enter + Duration::from_seconds(
                        rng.exponential(1.0 / cfg.vehicles_per_second));
    if (enter >= end) break;

    VehicleSession s;
    s.vehicle = vehicle++;
    s.enter = enter;
    s.residence = std::max(
        cfg.min_residence,
        Duration::from_seconds(rng.exponential(cfg.mean_residence.to_seconds())));
    if (watch.trace != nullptr)
      obs::emit(watch.trace, s.enter, "app.arrival.vehicle_enter",
                {{"vehicle", s.vehicle}, {"residence", s.residence}});

    // Per-vehicle request stream with multiplicative link churn: one walk
    // step per offer models the handoffs/fading between consecutive
    // requests of a moving vehicle.
    const double battery = rng.uniform(cfg.battery_min, 1.0);
    double bw_scale = std::exp2(rng.normal(0.0, cfg.bw_sigma));
    const TimePoint exit = s.enter + s.residence;
    TimePoint at = s.enter;
    for (;;) {
      at = at + Duration::from_seconds(
                    rng.exponential(1.0 / cfg.requests_per_second));
      if (at >= exit) break;
      bw_scale *= std::exp2(rng.normal(0.0, cfg.bw_sigma));
      VehicleRequest r;
      r.at = at;
      r.bw_scale = bw_scale;
      r.battery = battery;
      r.residence_left = exit - at;
      observe_arrival(watch, jobs, at, seq++);
      s.requests.push_back(r);
    }
    if (watch.trace != nullptr)
      obs::emit(watch.trace, exit, "app.arrival.vehicle_exit",
                {{"vehicle", s.vehicle},
                 {"requests", static_cast<std::uint64_t>(s.requests.size())}});
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace ntco::app
