#include "ntco/app/generators.hpp"

#include <algorithm>
#include <cmath>
#include <string>

namespace ntco::app {

namespace {

/// Log-normal draw with the requested mean and coefficient of variation,
/// floored at 1 unit so no component/flow degenerates to nothing.
double dispersed(double mean, double cv, Rng& rng) {
  if (cv <= 0.0) return mean;
  const double sigma2 = std::log(1.0 + cv * cv);
  const double mu = std::log(mean) - sigma2 / 2.0;
  return std::max(1.0, rng.lognormal(mu, std::sqrt(sigma2)));
}

Cycles draw_work(const GeneratorParams& p, Rng& rng) {
  return Cycles::count(static_cast<std::uint64_t>(
      dispersed(static_cast<double>(p.mean_work.value()), p.work_cv, rng)));
}

DataSize draw_flow(const GeneratorParams& p, Rng& rng) {
  return DataSize::bytes(static_cast<std::uint64_t>(dispersed(
      static_cast<double>(p.mean_flow.count_bytes()), p.flow_cv, rng)));
}

Component make_component(const std::string& name, const GeneratorParams& p,
                         bool pinned, Rng& rng) {
  return Component{name, draw_work(p, rng), p.memory_per_component,
                   p.image_per_component, pinned};
}

}  // namespace

TaskGraph linear_pipeline(const GeneratorParams& p, Rng rng) {
  NTCO_EXPECTS(p.components >= 2);
  TaskGraph g("pipeline-" + std::to_string(p.components));
  for (std::size_t i = 0; i < p.components; ++i) {
    const bool pinned = (i == 0 || i + 1 == p.components);
    (void)g.add_component(
        make_component("stage" + std::to_string(i), p, pinned, rng));
  }
  for (std::size_t i = 0; i + 1 < p.components; ++i)
    g.add_flow(static_cast<ComponentId>(i), static_cast<ComponentId>(i + 1),
               draw_flow(p, rng));
  return g;
}

TaskGraph fan_out_fan_in(std::size_t width, const GeneratorParams& p,
                         Rng rng) {
  NTCO_EXPECTS(width >= 1);
  TaskGraph g("fanout-" + std::to_string(width));
  const auto split = g.add_component(make_component("split", p, true, rng));
  std::vector<ComponentId> workers;
  workers.reserve(width);
  for (std::size_t i = 0; i < width; ++i)
    workers.push_back(g.add_component(
        make_component("worker" + std::to_string(i), p, false, rng)));
  const auto join = g.add_component(make_component("join", p, true, rng));
  for (const auto w : workers) {
    g.add_flow(split, w, draw_flow(p, rng));
    g.add_flow(w, join, draw_flow(p, rng));
  }
  return g;
}

TaskGraph layered_random(std::size_t layers, const GeneratorParams& p,
                         Rng rng) {
  NTCO_EXPECTS(layers >= 2);
  NTCO_EXPECTS(p.components >= layers);
  TaskGraph g("layered-" + std::to_string(layers) + "x" +
              std::to_string(p.components));

  // Spread components over layers: every layer gets at least one.
  std::vector<std::size_t> layer_of(p.components);
  for (std::size_t i = 0; i < layers; ++i) layer_of[i] = i;
  for (std::size_t i = layers; i < p.components; ++i)
    layer_of[i] = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(layers) - 1));
  std::sort(layer_of.begin(), layer_of.end());

  std::vector<std::vector<ComponentId>> by_layer(layers);
  for (std::size_t i = 0; i < p.components; ++i) {
    const bool pinned =
        layer_of[i] == 0 ? true : rng.bernoulli(p.pin_fraction / 2.0);
    const auto id = g.add_component(
        make_component("c" + std::to_string(i), p, pinned, rng));
    by_layer[layer_of[i]].push_back(id);
  }

  // Every component beyond layer 0 gets >=1 predecessor in the previous
  // layer, plus extra edges with decaying probability.
  for (std::size_t l = 1; l < layers; ++l) {
    for (const auto v : by_layer[l]) {
      const auto& prev = by_layer[l - 1];
      const auto first = prev[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(prev.size()) - 1))];
      g.add_flow(first, v, draw_flow(p, rng));
      for (const auto u : prev)
        if (u != first && rng.bernoulli(0.25))
          g.add_flow(u, v, draw_flow(p, rng));
    }
  }
  return g;
}

}  // namespace ntco::app
