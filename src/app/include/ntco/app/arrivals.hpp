#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "ntco/common/rng.hpp"
#include "ntco/common/units.hpp"
#include "ntco/obs/metrics.hpp"
#include "ntco/obs/trace.hpp"

/// \file arrivals.hpp
/// Open-loop arrival processes: the demand side of population-scale
/// serving experiments.
///
/// Every experiment up to F14 was closed-loop — a fixed population
/// re-offers work, so the broker's admission controller never faced
/// genuine arrival pressure. These generators produce *open-loop* request
/// streams: arrivals keep coming at the process rate whether or not the
/// system keeps up, which is the regime the paper's non-time-critical
/// deferral story is actually about.
///
/// Three processes, increasing in structure:
///   - `poisson_arrivals`: homogeneous Poisson at a fixed rate.
///   - `mmpp_arrivals`: a Markov-modulated Poisson process whose base
///     rate follows a 24 h diurnal envelope (piecewise-constant hourly
///     weights) with an optional two-state burst chain on top; sampled
///     exactly via thinning against the peak rate.
///   - `vehicular_sessions`: vehicles enter radio coverage as a Poisson
///     stream, stay for a short exponential link-residence time, and
///     offer requests while resident; per-handoff link-quality churn is a
///     multiplicative random walk. Requests carry the remaining residence
///     as a *hard* deadline — the result must land before the vehicle
///     leaves the cell.
///
/// Determinism: every draw flows through the caller's `Rng`. Fleet runs
/// hand each shard `Rng::stream(seed, shard)`, so the generated stream is
/// a pure function of (seed, shard) and byte-identical at any
/// NTCO_THREADS (see tests/arrivals_test.cpp, ArrivalFleet suite).

namespace ntco::app {

/// Optional observability attachment for arrival generation. When `trace`
/// is non-null each generated arrival emits an "app.arrival.*" event;
/// when `metrics` is non-null the "app.arrival.jobs" counter advances.
struct ArrivalObserver {
  obs::TraceSink* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

/// Homogeneous Poisson arrivals in [start, start + horizon), sorted.
/// Pre: rate_per_second > 0, horizon non-negative.
[[nodiscard]] std::vector<TimePoint> poisson_arrivals(
    TimePoint start, Duration horizon, double rate_per_second, Rng& rng,
    const ArrivalObserver& watch = {});

/// 24-hour rate envelope: one relative weight per hour of day. The
/// absolute rate at simulated hour h is
///   mean_rate * weight[h] / mean(weight)
/// so the time-averaged rate over a full day equals `mean_rate` exactly,
/// whatever the shape.
struct DiurnalProfile {
  std::array<double, 24> weight{};

  /// Constant rate (degenerates MMPP to homogeneous Poisson).
  [[nodiscard]] static DiurnalProfile flat();

  /// Calibrated residential two-peak day: a morning shoulder (07-09), a
  /// deep workday trough, a dominant evening peak (19-23) — the shape
  /// mobile-traffic studies report for consumer workloads — and a
  /// night-time floor that never quite reaches zero.
  [[nodiscard]] static DiurnalProfile residential_evening();

  [[nodiscard]] double mean() const;
  [[nodiscard]] double max() const;
};

/// Markov-modulated Poisson arrivals under a diurnal envelope.
struct MmppConfig {
  /// Time-averaged arrival rate over a full day (see DiurnalProfile).
  double mean_rate_per_second = 1.0;
  DiurnalProfile profile = DiurnalProfile::residential_evening();
  /// Optional two-state burst chain on top of the envelope: while the
  /// chain is in its burst state the instantaneous rate is multiplied by
  /// `burst_multiplier`. Sojourn times are exponential with the given
  /// means. A multiplier of 1 disables the chain (pure diurnal
  /// non-homogeneous Poisson).
  double burst_multiplier = 1.0;
  Duration mean_burst = Duration::minutes(5);
  Duration mean_calm = Duration::minutes(55);
};

/// Samples the MMPP exactly over [start, start + horizon) via thinning
/// against the peak modulated rate. Arrivals are sorted. Pre:
/// mean_rate_per_second > 0, burst_multiplier >= 1, positive sojourn
/// means, a profile with positive mean weight.
[[nodiscard]] std::vector<TimePoint> mmpp_arrivals(
    const MmppConfig& cfg, TimePoint start, Duration horizon, Rng& rng,
    const ArrivalObserver& watch = {});

/// Fast-churn vehicular population (Dettinger et al.'s dynamic vehicular
/// regime): short link residence, per-vehicle request streams, and
/// link-quality churn across handoffs.
struct VehicularConfig {
  /// Poisson rate at which vehicles enter radio coverage.
  double vehicles_per_second = 0.5;
  /// Exponential link-residence time (how long one vehicle stays served
  /// by the cell), floored at `min_residence`.
  Duration mean_residence = Duration::seconds(45);
  Duration min_residence = Duration::seconds(5);
  /// Per-vehicle Poisson request rate while resident.
  double requests_per_second = 0.2;
  /// Log2-scale sigma of the multiplicative link-quality random walk: the
  /// vehicle's bandwidth scale steps by exp2(N(0, bw_sigma)) at every
  /// request (mobility churn between consecutive offers).
  double bw_sigma = 0.5;
  /// Battery state of charge drawn uniformly in [battery_min, 1].
  double battery_min = 0.2;
};

/// One request offered by a resident vehicle.
struct VehicleRequest {
  TimePoint at;
  /// Link quality relative to the nominal path at request time (random
  /// walk across the session; churns per request).
  double bw_scale = 1.0;
  double battery = 1.0;
  /// Hard deadline: the result must be back before the vehicle exits
  /// coverage (exit - at).
  Duration residence_left;
};

/// One vehicle's pass through the cell.
struct VehicleSession {
  std::uint64_t vehicle = 0;
  TimePoint enter;
  Duration residence;
  std::vector<VehicleRequest> requests;

  [[nodiscard]] TimePoint exit() const { return enter + residence; }
};

/// Generates every session whose vehicle enters during
/// [start, start + horizon), sorted by entry time; requests within each
/// session are sorted too. Pre: positive rates, mean_residence >=
/// min_residence > 0, bw_sigma >= 0, battery_min in [0, 1].
[[nodiscard]] std::vector<VehicleSession> vehicular_sessions(
    const VehicularConfig& cfg, TimePoint start, Duration horizon, Rng& rng,
    const ArrivalObserver& watch = {});

}  // namespace ntco::app
