#pragma once

#include "ntco/app/task_graph.hpp"
#include "ntco/common/rng.hpp"

/// \file generators.hpp
/// Synthetic task-graph families for sweeps and property tests.
///
/// Published offloading evaluations run on a handful of real applications
/// plus parametric graph families; these generators provide the latter with
/// controllable size, shape, and compute-to-communication ratio.

namespace ntco::app {

/// Parameters shared by the random generators.
struct GeneratorParams {
  std::size_t components = 10;
  Cycles mean_work = Cycles::mega(200);     ///< per-component demand mean
  DataSize mean_flow = DataSize::kilobytes(200);  ///< per-flow payload mean
  double work_cv = 0.5;   ///< lognormal-ish dispersion of demand
  double flow_cv = 0.5;   ///< dispersion of payloads
  double pin_fraction = 0.2;  ///< expected fraction of pinned components
  DataSize memory_per_component = DataSize::megabytes(192);
  DataSize image_per_component = DataSize::megabytes(25);
};

/// A -> B -> C -> ... chain. First and last components are pinned (data
/// acquisition and result presentation stay on the UE).
[[nodiscard]] TaskGraph linear_pipeline(const GeneratorParams& p, Rng rng);

/// One pinned splitter fanning out to `width` parallel workers joined by a
/// pinned collector (map-reduce shape).
[[nodiscard]] TaskGraph fan_out_fan_in(std::size_t width,
                                       const GeneratorParams& p, Rng rng);

/// Layered random DAG: components spread over `layers` layers, edges only
/// between consecutive layers, each non-first-layer component has >= 1
/// predecessor. Sources are pinned.
[[nodiscard]] TaskGraph layered_random(std::size_t layers,
                                       const GeneratorParams& p, Rng rng);

}  // namespace ntco::app
