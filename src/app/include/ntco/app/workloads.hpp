#pragma once

#include "ntco/app/task_graph.hpp"

/// \file workloads.hpp
/// The four concrete non-time-critical applications the evaluation uses.
///
/// These are the use cases the paper's framing motivates: jobs whose users do
/// not benefit from edge-grade response times and which can therefore run in
/// the (cheaper, infinitely elastic) serverless cloud. Demands are calibrated
/// to the workload classes offloading papers use (OCR, transcoding, model
/// training, ETL) on a ~1.4 GHz reference core.

namespace ntco::app::workloads {

/// Overnight photo backup with OCR + face indexing. Moderate data,
/// moderate compute; capture and gallery stages pinned to the UE.
[[nodiscard]] TaskGraph photo_backup();

/// Batch video transcode of a recorded clip. Heavy data in, heavy compute,
/// small result. The transfer-dominated end of the spectrum.
[[nodiscard]] TaskGraph video_transcode();

/// Periodic on-device model personalisation (federated-style local
/// training). Tiny data, enormous compute: the compute-dominated end.
[[nodiscard]] TaskGraph ml_batch_training();

/// Nightly report generation over cached application data (ETL + render).
/// Middle of the spectrum, deeply pipelined.
[[nodiscard]] TaskGraph nightly_etl();

/// All four, for table-driven experiments.
[[nodiscard]] std::vector<TaskGraph> all();

}  // namespace ntco::app::workloads
