#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ntco/common/contracts.hpp"
#include "ntco/common/units.hpp"

/// \file task_graph.hpp
/// Application model: a DAG of components connected by data flows.
///
/// This is the unit the framework partitions. A *component* is a cohesive
/// piece of code (a method group / module) with a measured computational
/// demand; a *flow* is the serialised state that must cross the boundary if
/// its endpoints land on different sides of the partition. Components can be
/// *pinned* to the device (UI, sensor access, privacy-constrained code),
/// matching the constraint set of MAUI/CloneCloud-style partitioners.

namespace ntco::app {

/// Index of a component within its TaskGraph.
using ComponentId = std::uint32_t;

/// One offloadable unit of the application.
struct Component {
  std::string name;
  Cycles work;             ///< computational demand per execution
  DataSize memory;         ///< peak working set (floors serverless memory)
  DataSize image;          ///< deployment artifact size (affects cold start)
  bool pinned_local = false;  ///< must execute on the UE
  /// Amdahl parallel fraction: share of the work that can use extra vCPUs
  /// when the serverless memory setting buys more than one.
  double parallel_fraction = 0.8;
};

/// Directed data dependency: `bytes` of state move from -> to per execution.
struct DataFlow {
  ComponentId from;
  ComponentId to;
  DataSize bytes;
};

/// Immutable-after-build DAG of components.
///
/// Build with add_component()/add_flow(); structural invariants (valid ids,
/// no self-loops) are checked on insertion and acyclicity on demand via
/// topological_order(), which every consumer calls before planning.
class TaskGraph {
 public:
  explicit TaskGraph(std::string name) : name_(std::move(name)) {}

  /// Adds a component and returns its id (ids are dense, insertion-ordered).
  ComponentId add_component(Component c) {
    NTCO_EXPECTS(!c.name.empty());
    components_.push_back(std::move(c));
    out_.emplace_back();
    in_.emplace_back();
    return static_cast<ComponentId>(components_.size() - 1);
  }

  /// Adds a data flow. Pre: both endpoints exist, no self-loop.
  void add_flow(ComponentId from, ComponentId to, DataSize bytes) {
    NTCO_EXPECTS(from < components_.size());
    NTCO_EXPECTS(to < components_.size());
    NTCO_EXPECTS(from != to);
    const auto idx = flows_.size();
    flows_.push_back(DataFlow{from, to, bytes});
    out_[from].push_back(idx);
    in_[to].push_back(idx);
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t component_count() const {
    return components_.size();
  }
  [[nodiscard]] std::size_t flow_count() const { return flows_.size(); }

  [[nodiscard]] const Component& component(ComponentId id) const {
    NTCO_EXPECTS(id < components_.size());
    return components_[id];
  }
  [[nodiscard]] const std::vector<Component>& components() const {
    return components_;
  }
  [[nodiscard]] const DataFlow& flow(std::size_t idx) const {
    NTCO_EXPECTS(idx < flows_.size());
    return flows_[idx];
  }
  [[nodiscard]] const std::vector<DataFlow>& flows() const { return flows_; }

  /// Indices into flows() leaving / entering a component.
  [[nodiscard]] const std::vector<std::size_t>& out_flows(
      ComponentId id) const {
    NTCO_EXPECTS(id < components_.size());
    return out_[id];
  }
  [[nodiscard]] const std::vector<std::size_t>& in_flows(
      ComponentId id) const {
    NTCO_EXPECTS(id < components_.size());
    return in_[id];
  }

  /// Kahn topological order. Throws ConfigError if the graph has a cycle.
  [[nodiscard]] std::vector<ComponentId> topological_order() const;

  /// True if the flow structure is acyclic.
  [[nodiscard]] bool is_dag() const;

  /// Components with no incoming / outgoing flows.
  [[nodiscard]] std::vector<ComponentId> sources() const;
  [[nodiscard]] std::vector<ComponentId> sinks() const;

  /// Sum of all component demands.
  [[nodiscard]] Cycles total_work() const;
  /// Sum of all flow payloads.
  [[nodiscard]] DataSize total_flow_bytes() const;
  /// Number of pinned components.
  [[nodiscard]] std::size_t pinned_count() const;

  /// Compute-to-communication ratio: cycles of work per byte of flow.
  /// Pre: total_flow_bytes() > 0.
  [[nodiscard]] double compute_to_communication() const;

  /// Returns a copy with every component's work scaled by `factor`
  /// (used to sweep the compute-to-communication ratio in experiments).
  [[nodiscard]] TaskGraph with_work_scaled(double factor) const;

 private:
  std::string name_;
  std::vector<Component> components_;
  std::vector<DataFlow> flows_;
  std::vector<std::vector<std::size_t>> out_;
  std::vector<std::vector<std::size_t>> in_;
};

}  // namespace ntco::app
