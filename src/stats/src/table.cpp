#include "ntco/stats/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace ntco::stats {

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream out;
  if (!title_.empty()) out << "== " << title_ << " ==\n";

  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << cells[c];
      out << std::string(widths[c] - cells[c].size(), ' ');
    }
    out << " |\n";
  };

  emit_row(headers_);
  out << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c)
    out << std::string(widths[c] + 2, '-') << '|';
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  if (!caption_.empty()) out << caption_ << '\n';
  return out.str();
}

std::string Table::render_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) out << ',';
      out << cells[c];
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

namespace {

void append_escaped(std::ostringstream& out, const std::string& s) {
  for (const char ch : s) {
    switch (ch) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out << buf;
        } else {
          out << ch;
        }
    }
  }
}

}  // namespace

std::string Table::render_jsonl() const {
  std::ostringstream out;
  for (const auto& row : rows_) {
    out << '{';
    bool first = true;
    if (!title_.empty()) {
      out << "\"table\":\"";
      append_escaped(out, title_);
      out << '"';
      first = false;
    }
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (!first) out << ',';
      first = false;
      out << '"';
      append_escaped(out, headers_[c]);
      out << "\":\"";
      append_escaped(out, row[c]);
      out << '"';
    }
    out << "}\n";
  }
  return out.str();
}

std::string cell(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string cell_pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace ntco::stats
