#include "ntco/stats/queueing.hpp"

#include <limits>

#include "ntco/common/contracts.hpp"

namespace ntco::stats {

double erlang_b(std::size_t servers, double a) {
  NTCO_EXPECTS(a >= 0.0);
  if (a == 0.0) return servers == 0 ? 1.0 : 0.0;
  double b = 1.0;
  for (std::size_t n = 1; n <= servers; ++n) {
    const double k = static_cast<double>(n);
    b = a * b / (k + a * b);
  }
  return b;
}

double erlang_c(std::size_t servers, double a) {
  NTCO_EXPECTS(a >= 0.0);
  NTCO_EXPECTS(servers > 0);
  const double c = static_cast<double>(servers);
  if (a >= c) return 1.0;
  // C = c*B / (c - a(1-B)) with B the Erlang-B value.
  const double b = erlang_b(servers, a);
  return c * b / (c - a * (1.0 - b));
}

double mmc_mean_wait_in_service_times(std::size_t servers, double a) {
  NTCO_EXPECTS(servers > 0);
  const double c = static_cast<double>(servers);
  if (a >= c) return std::numeric_limits<double>::infinity();
  return erlang_c(servers, a) / (c - a);
}

double mmc_mean_queue_length(std::size_t servers, double a) {
  // Lq = lambda * Wq = a * Wq / s  (with Wq in service times, lambda = a/s
  // per service time) => Lq = a * C / (c - a).
  const double wq = mmc_mean_wait_in_service_times(servers, a);
  return a * wq;
}

}  // namespace ntco::stats
