#include "ntco/stats/histogram.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace ntco::stats {

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);

  std::ostringstream out;
  char label[64];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
    std::snprintf(label, sizeof label, "[%10.3f, %10.3f)", bin_lo(i),
                  bin_lo(i) + w);
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    out << label << ' ' << std::string(bar, '#') << ' ' << counts_[i] << '\n';
  }
  if (underflow_ > 0) out << "underflow: " << underflow_ << '\n';
  if (overflow_ > 0) out << "overflow: " << overflow_ << '\n';
  return out.str();
}

}  // namespace ntco::stats
