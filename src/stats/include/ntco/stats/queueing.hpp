#pragma once

#include <cstddef>


/// \file queueing.hpp
/// Closed-form queueing results used to size pools analytically and to
/// cross-validate the simulators (the M/M/c property tests check the edge
/// platform against these formulas).

namespace ntco::stats {

/// Erlang-B blocking probability: `servers` servers, no queue, offered
/// load `a` Erlangs. Stable recurrence B(n) = aB(n-1) / (n + aB(n-1)).
[[nodiscard]] double erlang_b(std::size_t servers, double a);

/// Erlang-C probability that an arrival must wait in an M/M/c queue with
/// offered load `a` Erlangs. Pre: a < servers (stability); returns 1.0 at
/// or beyond saturation.
[[nodiscard]] double erlang_c(std::size_t servers, double a);

/// Mean wait in queue of an M/M/c system, in multiples of the mean service
/// time: Wq = C(c, a) / (c - a). Returns +inf at or beyond saturation.
[[nodiscard]] double mmc_mean_wait_in_service_times(std::size_t servers,
                                                    double a);

/// Mean number in queue (Lq) of an M/M/c system.
[[nodiscard]] double mmc_mean_queue_length(std::size_t servers, double a);

}  // namespace ntco::stats
