#pragma once

#include <string>
#include <vector>

#include "ntco/common/contracts.hpp"

/// \file table.hpp
/// Aligned plain-text table rendering. Every bench binary reports its
/// experiment through this so that tables in EXPERIMENTS.md are regenerated
/// verbatim by `for b in build/bench/*; do $b; done`.

namespace ntco::stats {

/// Column-aligned text table with an optional title and caption.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {
    NTCO_EXPECTS(!headers_.empty());
  }

  /// Adds a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells) {
    NTCO_EXPECTS(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
  }

  void set_title(std::string title) { title_ = std::move(title); }
  void set_caption(std::string caption) { caption_ = std::move(caption); }

  [[nodiscard]] const std::string& title() const { return title_; }
  [[nodiscard]] const std::string& caption() const { return caption_; }
  [[nodiscard]] const std::vector<std::string>& headers() const {
    return headers_;
  }
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Renders with column alignment, a header separator, and the title and
  /// caption if set.
  [[nodiscard]] std::string render() const;

  /// Renders as comma-separated values (headers first), for plotting.
  [[nodiscard]] std::string render_csv() const;

  /// Renders as JSON Lines: one object per data row, keyed by header, all
  /// values as strings (cells keep their formatted precision). The title is
  /// included as a "table" key when set.
  [[nodiscard]] std::string render_jsonl() const;

 private:
  std::string title_;
  std::string caption_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision numeric cell helpers.
[[nodiscard]] std::string cell(double v, int precision = 2);
[[nodiscard]] std::string cell_pct(double fraction, int precision = 1);

}  // namespace ntco::stats
