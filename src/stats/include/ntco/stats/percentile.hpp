#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "ntco/common/contracts.hpp"

/// \file percentile.hpp
/// Exact empirical percentiles over a retained sample.
///
/// The simulators produce at most a few million observations per experiment,
/// so exact percentiles (sort on demand, amortised) are affordable and avoid
/// sketch-approximation error in reported tail latencies.

namespace ntco::stats {

/// Collects observations and answers exact quantile queries.
class PercentileSample {
 public:
  void add(double x) {
    NTCO_EXPECTS(std::isfinite(x));
    data_.push_back(x);
    sorted_ = false;
  }

  [[nodiscard]] std::size_t count() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  /// Empirical quantile with linear interpolation (type-7, the R default).
  /// Pre: !empty(), 0 <= q <= 1.
  [[nodiscard]] double quantile(double q) const {
    NTCO_EXPECTS(!data_.empty());
    NTCO_EXPECTS(q >= 0.0 && q <= 1.0);
    ensure_sorted();
    const double h = q * static_cast<double>(data_.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(h));
    const auto hi = std::min(lo + 1, data_.size() - 1);
    const double frac = h - static_cast<double>(lo);
    return data_[lo] + frac * (data_[hi] - data_[lo]);
  }

  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] double p95() const { return quantile(0.95); }
  [[nodiscard]] double p99() const { return quantile(0.99); }
  [[nodiscard]] double min() const { return quantile(0.0); }
  [[nodiscard]] double max() const { return quantile(1.0); }

  [[nodiscard]] double mean() const {
    NTCO_EXPECTS(!data_.empty());
    double s = 0.0;
    for (double x : data_) s += x;
    return s / static_cast<double>(data_.size());
  }

  /// Merges another sample's observations (parallel-reduction counterpart
  /// of Accumulator::merge, used by the fleet to combine per-shard
  /// samples). Quantiles of the result are independent of merge order:
  /// the pooled multiset is what gets sorted. Self-merge doubles every
  /// observation.
  void merge(const PercentileSample& o) {
    if (&o == this) {
      // vector::insert from the vector's own range is UB once growth
      // reallocates out from under the source iterators; duplicate via
      // resize + copy into the new tail instead.
      const std::size_t n = data_.size();
      data_.resize(2 * n);
      std::copy_n(data_.begin(), n,
                  data_.begin() + static_cast<std::ptrdiff_t>(n));
      sorted_ = false;
      return;
    }
    data_.insert(data_.end(), o.data_.begin(), o.data_.end());
    sorted_ = false;
  }

  void clear() {
    data_.clear();
    sorted_ = false;
  }

 private:
  void ensure_sorted() const {
    if (!sorted_) {
      std::sort(data_.begin(), data_.end());
      sorted_ = true;
    }
  }

  mutable std::vector<double> data_;
  mutable bool sorted_ = false;
};

}  // namespace ntco::stats
