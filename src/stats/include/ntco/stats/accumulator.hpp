#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "ntco/common/contracts.hpp"

/// \file accumulator.hpp
/// Streaming moment statistics (Welford's online algorithm).

namespace ntco::stats {

/// Numerically stable streaming mean/variance/min/max accumulator.
class Accumulator {
 public:
  void add(double x) {
    NTCO_EXPECTS(std::isfinite(x));
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Pre: !empty().
  [[nodiscard]] double mean() const {
    NTCO_EXPECTS(n_ > 0);
    return mean_;
  }
  [[nodiscard]] double min() const {
    NTCO_EXPECTS(n_ > 0);
    return min_;
  }
  [[nodiscard]] double max() const {
    NTCO_EXPECTS(n_ > 0);
    return max_;
  }

  /// Sample variance (n-1 denominator); 0 for a single observation.
  [[nodiscard]] double variance() const {
    NTCO_EXPECTS(n_ > 0);
    if (n_ < 2) return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }

  /// Standard error of the mean; 0 for a single observation.
  [[nodiscard]] double stderr_mean() const {
    NTCO_EXPECTS(n_ > 0);
    return stddev() / std::sqrt(static_cast<double>(n_));
  }

  /// Half-width of an approximate 95% confidence interval on the mean
  /// (normal approximation; fine for the sample sizes the benches use).
  [[nodiscard]] double ci95_halfwidth() const { return 1.96 * stderr_mean(); }

  /// Merges another accumulator (parallel Welford combination).
  void merge(const Accumulator& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double delta = o.mean_ - mean_;
    const auto n = static_cast<double>(n_), m = static_cast<double>(o.n_);
    m2_ += o.m2_ + delta * delta * n * m / (n + m);
    mean_ = (n * mean_ + m * o.mean_) / (n + m);
    n_ += o.n_;
    sum_ += o.sum_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace ntco::stats
