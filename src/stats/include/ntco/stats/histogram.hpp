#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "ntco/common/contracts.hpp"

/// \file histogram.hpp
/// Fixed-bin linear histogram with under/overflow buckets, plus an ASCII
/// renderer for quick inspection of simulated distributions.

namespace ntco::stats {

/// Linear-binned histogram over [lo, hi).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), counts_(bins, 0) {
    NTCO_EXPECTS(bins > 0);
    NTCO_EXPECTS(lo < hi);
  }

  void add(double x) {
    NTCO_EXPECTS(std::isfinite(x));
    ++total_;
    if (x < lo_) {
      ++underflow_;
    } else if (x >= hi_) {
      ++overflow_;
    } else {
      const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
      auto idx = static_cast<std::size_t>((x - lo_) / w);
      if (idx >= counts_.size()) idx = counts_.size() - 1;  // fp edge
      ++counts_[idx];
    }
  }

  /// Merges a histogram with identical bin geometry (lo, hi, bin count);
  /// anything else is a contract violation. Bin-wise addition commutes,
  /// so fleet shard merges give the same result in any grouping.
  void merge(const Histogram& o) {
    NTCO_EXPECTS(o.lo_ == lo_ && o.hi_ == hi_ &&
                 o.counts_.size() == counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += o.counts_[i];
    underflow_ += o.underflow_;
    overflow_ += o.overflow_;
    total_ += o.total_;
  }

  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin(std::size_t i) const {
    NTCO_EXPECTS(i < counts_.size());
    return counts_[i];
  }
  [[nodiscard]] double bin_lo(std::size_t i) const {
    NTCO_EXPECTS(i < counts_.size());
    const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + w * static_cast<double>(i);
  }

  /// Fraction of in-range mass at or below the upper edge of bin i.
  /// Under- and overflow observations are excluded from both numerator and
  /// denominator: the CDF is over the binned range [lo, hi) only, so the
  /// last bin's value is exactly 1 whenever any observation landed in
  /// range. Returns 0 when none did.
  [[nodiscard]] double cdf_at_bin(std::size_t i) const {
    NTCO_EXPECTS(i < counts_.size());
    const std::uint64_t in_range = total_ - underflow_ - overflow_;
    if (in_range == 0) return 0.0;
    std::uint64_t cum = 0;
    for (std::size_t k = 0; k <= i; ++k) cum += counts_[k];
    return static_cast<double>(cum) / static_cast<double>(in_range);
  }

  /// Multi-line ASCII bar rendering (one row per bin), for logs.
  [[nodiscard]] std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace ntco::stats
