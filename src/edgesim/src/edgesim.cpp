// Header-only module; see edge_platform.hpp.
#include "ntco/edgesim/edge_platform.hpp"
