// Header-only module; see edge_platform.hpp.
// ntco-lint: allow(R8) compile anchor: this TU exists to build the header
#include "ntco/edgesim/edge_platform.hpp"
