#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>

#include "ntco/common/contracts.hpp"
#include "ntco/common/error.hpp"
#include "ntco/common/units.hpp"
#include "ntco/sim/server_pool.hpp"
#include "ntco/sim/simulator.hpp"

/// \file edge_platform.hpp
/// Edge-computing comparator: a small on-premise site with a fixed pool of
/// servers reachable over a LAN.
///
/// Two properties make this the foil for the paper's argument:
///  - capacity is finite, so load beyond `servers` queues (latency collapses
///    exactly where the serverless cloud keeps scaling), and
///  - the infrastructure bills by existing, not by use: cost accrues per
///    server-hour whether or not anything runs, which is the "required
///    infrastructure" drawback the abstract cites.
///
/// Jobs are addressable (`submit` returns a JobId) and support the
/// checkpoint/resume pair the continuum migration engine builds on:
/// `checkpoint` tears a queued or running job off the site, reporting the
/// exec time already rendered, and `submit_resumed` re-enters a job with
/// that partial exec credited so only the remainder is served.

namespace ntco::edgesim {

/// Static description of one edge site.
struct EdgeConfig {
  std::size_t servers = 4;
  Frequency server_speed = Frequency::gigahertz(3.0);
  /// Amortised capex + opex per server-hour, billed on wall time.
  Money infra_cost_per_server_hour = Money::from_usd(0.12);
  /// Per-request dispatch overhead (container routing and setup).
  Duration request_overhead = Duration::millis(2);
};

/// Outcome of one edge job. A checkpointed job completes immediately with
/// `preempted = true` and `exec_time` = the partial run it consumed.
struct EdgeResult {
  TimePoint submitted;
  TimePoint started;
  TimePoint finished;
  Duration queue_wait;
  Duration exec_time;
  /// Exec credited from an earlier checkpointed run (resume path).
  Duration exec_credit;
  bool preempted = false;
};

/// Aggregate edge-site accounting.
struct EdgeStats {
  std::uint64_t jobs = 0;
  std::uint64_t preemptions = 0;
  Duration total_exec;
  Duration total_queue_wait;
};

/// Fixed-capacity edge site. Jobs queue FIFO for a free server.
class EdgePlatform {
 public:
  using Callback = std::function<void(const EdgeResult&)>;
  using JobId = std::uint64_t;

  /// Progress of a live job (see `in_flight`).
  struct InFlightStatus {
    bool executing = false;  ///< false while still queued
    Duration consumed;       ///< exec already rendered (excl. overhead)
    Duration remaining;      ///< exec still owed
  };

  EdgePlatform(sim::Simulator& sim, EdgeConfig cfg)
      : sim_(sim), cfg_(cfg), pool_(sim, cfg.servers), opened_(sim.now()) {
    if (cfg.server_speed.is_zero())
      throw ConfigError("edge server_speed must be positive");
  }

  EdgePlatform(const EdgePlatform&) = delete;
  EdgePlatform& operator=(const EdgePlatform&) = delete;

  /// Execution time of `work` on one edge server (excludes overhead).
  [[nodiscard]] Duration exec_time(Cycles work) const {
    return work / cfg_.server_speed;
  }

  /// Queues `work`; `done` fires on completion.
  JobId submit(Cycles work, Callback done) {
    return enqueue(work, Duration::zero(), std::move(done));
  }

  /// Queues `work` with `exec_credit` of it already performed elsewhere:
  /// only the remainder (plus dispatch overhead) occupies a server.
  JobId submit_resumed(Cycles work, Duration exec_credit, Callback done) {
    NTCO_EXPECTS(!exec_credit.is_negative());
    return enqueue(work, exec_credit, std::move(done));
  }

  /// Checkpoints a queued or running job off the site. Its callback fires
  /// immediately with `preempted = true` and `exec_time` = the partial run
  /// rendered so far (zero if still queued). Returns false for an unknown
  /// or already-completed job.
  bool checkpoint(JobId id) {
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return false;
    const auto info = pool_.cancel(it->second.ticket);
    NTCO_EXPECTS(info.has_value());
    PendingJob job = std::move(it->second);
    jobs_.erase(it);

    EdgeResult r;
    r.submitted = job.submitted;
    r.finished = sim_.now();
    r.preempted = true;
    r.exec_credit = job.exec_credit;
    if (info->was_running) {
      r.started = info->started;
      r.queue_wait = info->started - job.submitted;
      const Duration past_overhead =
          info->consumed > cfg_.request_overhead
              ? info->consumed - cfg_.request_overhead
              : Duration::zero();
      r.exec_time = past_overhead < job.exec ? past_overhead : job.exec;
    } else {
      r.started = sim_.now();
      r.queue_wait = sim_.now() - job.submitted;
    }
    ++stats_.preemptions;
    stats_.total_exec += r.exec_time;
    stats_.total_queue_wait += r.queue_wait;
    job.done(r);
    return true;
  }

  /// Progress of a live job; nullopt once completed or checkpointed.
  [[nodiscard]] std::optional<InFlightStatus> in_flight(JobId id) const {
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return std::nullopt;
    const PendingJob& job = it->second;
    const auto st = pool_.status(job.ticket);
    NTCO_EXPECTS(st.has_value());
    InFlightStatus s;
    s.remaining = job.exec;
    if (st->running) {
      s.executing = true;
      const Duration elapsed = sim_.now() - st->started;
      const Duration past_overhead = elapsed > cfg_.request_overhead
                                         ? elapsed - cfg_.request_overhead
                                         : Duration::zero();
      s.consumed = past_overhead < job.exec ? past_overhead : job.exec;
      s.remaining = job.exec - s.consumed;
    }
    return s;
  }

  /// Standing infrastructure cost accrued from site opening to sim-now:
  /// servers x elapsed x hourly rate, independent of utilisation.
  [[nodiscard]] Money infrastructure_cost() const {
    const double hours = (sim_.now() - opened_).to_seconds() / 3600.0;
    return cfg_.infra_cost_per_server_hour *
           (hours * static_cast<double>(cfg_.servers));
  }

  /// Busy-time share of total server capacity since opening, in [0, 1].
  [[nodiscard]] double utilization() const {
    const Duration elapsed = sim_.now() - opened_;
    if (elapsed.is_zero()) return 0.0;
    return pool_.total_busy_time().to_seconds() /
           (elapsed.to_seconds() * static_cast<double>(cfg_.servers));
  }

  [[nodiscard]] const EdgeStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t queued() const { return pool_.queued(); }
  [[nodiscard]] std::size_t busy() const { return pool_.busy(); }
  [[nodiscard]] const EdgeConfig& config() const { return cfg_; }

 private:
  struct PendingJob {
    sim::ServerPool::Ticket ticket = 0;
    TimePoint submitted;
    Duration exec;  ///< planned exec after credit
    Duration exec_credit;
    Callback done;
  };

  JobId enqueue(Cycles work, Duration exec_credit, Callback done) {
    NTCO_EXPECTS(done != nullptr);
    const Duration full = exec_time(work);
    const Duration exec =
        exec_credit < full ? full - exec_credit : Duration::zero();
    const Duration service = cfg_.request_overhead + exec;
    const TimePoint submitted = sim_.now();
    const JobId id = next_job_++;
    const auto ticket = pool_.submit(
        service, [this, id](TimePoint started) { finish(id, started); });
    jobs_.emplace(
        id, PendingJob{ticket, submitted, exec, exec_credit, std::move(done)});
    return id;
  }

  void finish(JobId id, TimePoint started) {
    const auto it = jobs_.find(id);
    NTCO_EXPECTS(it != jobs_.end());
    PendingJob job = std::move(it->second);
    jobs_.erase(it);
    EdgeResult r;
    r.submitted = job.submitted;
    r.started = started;
    r.finished = sim_.now();
    r.queue_wait = started - job.submitted;
    r.exec_time = job.exec;
    r.exec_credit = job.exec_credit;
    ++stats_.jobs;
    stats_.total_exec += job.exec;
    stats_.total_queue_wait += r.queue_wait;
    job.done(r);
  }

  sim::Simulator& sim_;
  EdgeConfig cfg_;
  sim::ServerPool pool_;
  TimePoint opened_;
  EdgeStats stats_;
  std::map<JobId, PendingJob> jobs_;
  JobId next_job_ = 1;
};

}  // namespace ntco::edgesim
