#pragma once

#include <functional>

#include "ntco/common/contracts.hpp"
#include "ntco/common/error.hpp"
#include "ntco/common/units.hpp"
#include "ntco/sim/server_pool.hpp"
#include "ntco/sim/simulator.hpp"

/// \file edge_platform.hpp
/// Edge-computing comparator: a small on-premise site with a fixed pool of
/// servers reachable over a LAN.
///
/// Two properties make this the foil for the paper's argument:
///  - capacity is finite, so load beyond `servers` queues (latency collapses
///    exactly where the serverless cloud keeps scaling), and
///  - the infrastructure bills by existing, not by use: cost accrues per
///    server-hour whether or not anything runs, which is the "required
///    infrastructure" drawback the abstract cites.

namespace ntco::edgesim {

/// Static description of one edge site.
struct EdgeConfig {
  std::size_t servers = 4;
  Frequency server_speed = Frequency::gigahertz(3.0);
  /// Amortised capex + opex per server-hour, billed on wall time.
  Money infra_cost_per_server_hour = Money::from_usd(0.12);
  /// Per-request dispatch overhead (container routing and setup).
  Duration request_overhead = Duration::millis(2);
};

/// Outcome of one edge job.
struct EdgeResult {
  TimePoint submitted;
  TimePoint started;
  TimePoint finished;
  Duration queue_wait;
  Duration exec_time;
};

/// Aggregate edge-site accounting.
struct EdgeStats {
  std::uint64_t jobs = 0;
  Duration total_exec;
  Duration total_queue_wait;
};

/// Fixed-capacity edge site. Jobs queue FIFO for a free server.
class EdgePlatform {
 public:
  using Callback = std::function<void(const EdgeResult&)>;

  EdgePlatform(sim::Simulator& sim, EdgeConfig cfg)
      : sim_(sim), cfg_(cfg), pool_(sim, cfg.servers), opened_(sim.now()) {
    if (cfg.server_speed.is_zero())
      throw ConfigError("edge server_speed must be positive");
  }

  EdgePlatform(const EdgePlatform&) = delete;
  EdgePlatform& operator=(const EdgePlatform&) = delete;

  /// Execution time of `work` on one edge server (excludes overhead).
  [[nodiscard]] Duration exec_time(Cycles work) const {
    return work / cfg_.server_speed;
  }

  /// Queues `work`; `done` fires on completion.
  void submit(Cycles work, Callback done) {
    NTCO_EXPECTS(done != nullptr);
    const TimePoint submitted = sim_.now();
    const Duration service = cfg_.request_overhead + exec_time(work);
    const Duration exec = exec_time(work);
    pool_.submit(service, [this, submitted, exec,
                           done = std::move(done)](TimePoint started) {
      EdgeResult r;
      r.submitted = submitted;
      r.started = started;
      r.finished = sim_.now();
      r.queue_wait = started - submitted;
      r.exec_time = exec;
      ++stats_.jobs;
      stats_.total_exec += exec;
      stats_.total_queue_wait += r.queue_wait;
      done(r);
    });
  }

  /// Standing infrastructure cost accrued from site opening to sim-now:
  /// servers x elapsed x hourly rate, independent of utilisation.
  [[nodiscard]] Money infrastructure_cost() const {
    const double hours = (sim_.now() - opened_).to_seconds() / 3600.0;
    return cfg_.infra_cost_per_server_hour *
           (hours * static_cast<double>(cfg_.servers));
  }

  /// Busy-time share of total server capacity since opening, in [0, 1].
  [[nodiscard]] double utilization() const {
    const Duration elapsed = sim_.now() - opened_;
    if (elapsed.is_zero()) return 0.0;
    return pool_.total_busy_time().to_seconds() /
           (elapsed.to_seconds() * static_cast<double>(cfg_.servers));
  }

  [[nodiscard]] const EdgeStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t queued() const { return pool_.queued(); }
  [[nodiscard]] std::size_t busy() const { return pool_.busy(); }
  [[nodiscard]] const EdgeConfig& config() const { return cfg_; }

 private:
  sim::Simulator& sim_;
  EdgeConfig cfg_;
  sim::ServerPool pool_;
  TimePoint opened_;
  EdgeStats stats_;
};

}  // namespace ntco::edgesim
