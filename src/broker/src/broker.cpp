#include "ntco/broker/broker.hpp"

#include <algorithm>
#include <utility>

#include "ntco/common/contracts.hpp"
#include "ntco/net/transport.hpp"
#include "ntco/partition/cost_model.hpp"

namespace ntco::broker {

Broker::Broker(sim::Simulator& sim, serverless::Platform& platform,
               core::OffloadController& controller,
               const partition::Partitioner& partitioner, BrokerConfig cfg)
    : sim_(sim),
      platform_(platform),
      controller_(controller),
      partitioner_(partitioner),
      cfg_(std::move(cfg)),
      scheduler_(platform, cfg_.defer),
      cache_(cfg_.cache),
      admission_(cfg_.admission),
      dispatcher_(sim, cfg_.batch) {
  // The cache is both the stage-1 lookup and the stage-2 publication
  // point; a two-stage broker without it would resolve into the void.
  NTCO_EXPECTS(!cfg_.two_stage_enabled || cfg_.cache_enabled);
}

void Broker::attach_observer(obs::TraceSink* trace,
                             obs::MetricsRegistry* metrics) {
  trace_ = trace;
  m_ = {};
  if (metrics != nullptr) {
    m_.requests = &metrics->counter("broker.requests");
    m_.completed = &metrics->counter("broker.completed");
    m_.failed = &metrics->counter("broker.failed");
    m_.fast_serves = &metrics->counter("broker.twostage.fast_serves");
    m_.resolves = &metrics->counter("broker.twostage.resolves");
    m_.agreements = &metrics->counter("broker.twostage.agreements");
    m_.decision_us = &metrics->summary("broker.decision_us");
    m_.job_cost_usd = &metrics->summary("broker.job_cost_usd");
    m_.completion_s = &metrics->summary("broker.completion_s");
  }
  cache_.attach_observer(trace, metrics);
  admission_.attach_observer(trace, metrics);
  dispatcher_.attach_observer(trace, metrics);
}

Duration Broker::admission_estimate(const app::TaskGraph& g,
                                    double bandwidth_scale) const {
  // Coarse on purpose: admission runs *before* planning, so all it can
  // afford is "all the work, remotely, at the reference memory" plus "all
  // boundary state across the radio once". The wireless leg reads the
  // transport's *nominal* spec — the stateful timing methods commit
  // transfers (consume jitter randomness, occupy shared capacity), which
  // an estimate must never do.
  const DataSize ref =
      platform_.quantize_memory(controller_.config().reference_memory);
  const Duration service = platform_.exec_time(ref, g.total_work());
  const net::PathSpec& spec = controller_.transport().spec();
  Duration transfer = spec.up.latency + spec.down.latency;
  const DataRate scaled = spec.up.rate * bandwidth_scale;
  if (scaled > DataRate::bits_per_second(0))
    transfer = transfer + g.total_flow_bytes() / scaled;
  return transfer + service;
}

void Broker::serve(ServeRequest req,
                   // ntco-lint: allow(R6) type-erased API boundary: the callback is bound once per request, off the decision fast path
                   std::function<void(const ServeOutcome&)> done) {
  NTCO_EXPECTS(req.app != nullptr);
  NTCO_EXPECTS(req.battery >= 0.0 && req.battery <= 1.0);
  NTCO_EXPECTS(req.bandwidth_scale > 0.0);
  NTCO_EXPECTS(!req.slack.is_negative());
  ++stats_.requests;
  if (m_.requests) m_.requests->add();
  attempt(std::move(req), sim_.now(), 0, std::move(done), /*is_retry=*/false);
}

void Broker::attempt(ServeRequest req, TimePoint released,
                     std::uint64_t deferrals,
                     // ntco-lint: allow(R6) completion callback threaded through by move, no rebinding per hop
                     std::function<void(const ServeOutcome&)> done,
                     bool is_retry) {
  if (is_retry) admission_.retry_resolved();
  const TimePoint now = sim_.now();
  const TimePoint deadline = released + req.slack;
  const AdmissionDecision d = admission_.decide(
      now, deadline, admission_estimate(*req.app, req.bandwidth_scale));

  switch (d.verdict) {
    case AdmissionVerdict::Admitted:
      decide_and_dispatch(std::move(req), released, deferrals,
                          std::move(done));
      return;
    case AdmissionVerdict::Deferred:
      // ntco-lint: allow(R9) deferral retry handler: runs on the admission backoff path, heap fallback is acceptable there
      sim_.schedule_at(d.retry_at, [this, req = std::move(req), released,
                                    deferrals,
                                    done = std::move(done)]() mutable {
        attempt(std::move(req), released, deferrals + 1, std::move(done),
                /*is_retry=*/true);
      });
      return;
    case AdmissionVerdict::Shed: {
      ++stats_.shed;
      ServeOutcome out;
      out.status = ServeStatus::Shed;
      out.shed_reason = d.reason;
      out.released = released;
      out.finished = now;
      out.deferrals = deferrals;
      if (done) done(out);
      return;
    }
  }
}

void Broker::decide_and_dispatch(ServeRequest req, TimePoint released,
                                 std::uint64_t deferrals,
                                 // ntco-lint: allow(R6) completion callback arrives by move from attempt(), no fresh binding
                                 std::function<void(const ServeOutcome&)> done) {
  const app::TaskGraph& g = *req.app;
  const TimePoint now = sim_.now();

  // The user's link quality perturbs the nominal planning environment;
  // that perturbed environment is both what the partitioner sees and what
  // the cache key quantizes.
  partition::Environment env = controller_.make_environment(g);
  env.uplink = env.uplink * req.bandwidth_scale;
  env.downlink = env.downlink * req.bandwidth_scale;

  DecisionContext ctx;
  ctx.workload = g.name();
  ctx.uplink = env.uplink;
  ctx.rtt = env.uplink_latency + env.downlink_latency;
  ctx.battery = req.battery;
  ctx.hour = static_cast<int>(
      (now.since_origin().count_micros() / 3'600'000'000LL) % 24);

  // The cache hands back a pointer that the next mutation invalidates, so
  // the execution path owns an immutable copy.
  std::shared_ptr<const core::DeploymentPlan> plan;
  bool hit = false;
  bool heuristic = false;
  if (cfg_.cache_enabled) {
    if (const core::DeploymentPlan* found = cache_.lookup(ctx, now)) {
      plan = std::make_shared<const core::DeploymentPlan>(*found);  // ntco-lint: allow(R6) plan snapshot must outlive async dispatch; the cache row it copies is mutation-invalidated
      hit = true;
    }
  }
  if (plan == nullptr && cfg_.two_stage_enabled) {
    // Stage 1: answer the miss *now* with the cheap heuristic placement
    // and let the exact solver catch up in the background. The heuristic
    // plan is deliberately not cached — the cache only ever publishes
    // exact plans, so a bucket's quality ratchets up, never down.
    core::DeploymentPlan fast =
        controller_.prepare(g, stage1_partitioner(), env);
    heuristic = true;
    ++twostage_.fast_serves;
    if (m_.fast_serves) m_.fast_serves->add();
    if (trace_)
      obs::emit(trace_, now, "broker.twostage.fast_serve",
                {{"workload", std::string_view(g.name())}});
    schedule_exact_resolve(ctx, g, env, fast.partition);
    plan = std::make_shared<const core::DeploymentPlan>(std::move(fast));  // ntco-lint: allow(R6) plan snapshot must outlive async dispatch
  }
  if (plan == nullptr) {
    core::DeploymentPlan fresh = controller_.prepare(g, partitioner_, env);
    if (cfg_.cache_enabled) cache_.insert(ctx, fresh, now);  // ntco-lint: allow(R6) cache-miss path only: one insert per newly planned workload
    plan = std::make_shared<const core::DeploymentPlan>(std::move(fresh));  // ntco-lint: allow(R6) plan snapshot must outlive async dispatch
  }

  const Duration decision =
      hit ? cfg_.hit_cost
      : heuristic
          ? cfg_.heuristic_cost
          : cfg_.plan_cost_base +
                cfg_.plan_cost_per_component *
                    static_cast<double>(g.component_count());
  if (m_.decision_us)
    m_.decision_us->add(static_cast<double>(decision.count_micros()));

  // The decision itself takes simulated time; dispatch resumes after it.
  // ntco-lint: allow(R9) dispatch continuation carries the plan handle and completion callback; deliberate heap fallback
  sim_.schedule_after(decision, [this, req = std::move(req), released,
                                 deferrals, plan = std::move(plan), hit,
                                 heuristic, decision,
                                 done = std::move(done)]() mutable {
    const app::TaskGraph& truth = *req.app;
    const TimePoint resumed = sim_.now();
    const TimePoint deadline = released + req.slack;
    const Duration slack_left =
        deadline > resumed ? deadline - resumed : Duration::zero();
    const sched::DeferredJob job{truth.name(), truth.total_work(), slack_left};
    const Duration est = plan->predicted.latency;
    const TimePoint start = scheduler_.plan_start(resumed, job, est);

    BatchDispatcher::Job run =
        [this, plan, truth_ptr = req.app, released, hit, heuristic, decision,
         deferrals,
         // ntco-lint: allow(R6) batch completion hook: bound once per dispatched job
         done = std::move(done)](std::function<void()> batch_done) mutable {
          controller_.execute_async(
              *plan, *truth_ptr,
              [this, plan, released, hit, heuristic, decision, deferrals,
               done = std::move(done), batch_done = std::move(batch_done)](
                  const core::ExecutionReport& r) mutable {
                ServeOutcome out;
                out.status = r.failed ? ServeStatus::Failed
                                      : ServeStatus::Completed;
                out.cache_hit = hit;
                out.heuristic_serve = heuristic;
                out.decision_latency = decision;
                out.released = released;
                out.finished = sim_.now();
                out.deferrals = deferrals;
                out.report = r;
                if (r.failed) {
                  ++stats_.failed;
                  if (m_.failed) m_.failed->add();
                } else {
                  ++stats_.completed;
                  if (m_.completed) m_.completed->add();
                }
                if (m_.job_cost_usd)
                  m_.job_cost_usd->add(r.cloud_cost.to_usd());
                if (m_.completion_s)
                  m_.completion_s->add((out.finished - released).to_seconds());
                if (batch_done) batch_done();
                if (done) done(out);
              });
        };

    if (cfg_.batching_enabled) {
      // Align the start up to the batch grid so compatible users flush
      // together, but never past the latest deadline-safe start.
      const TimePoint latest = scheduler_.latest_start(resumed, job, est);
      const std::int64_t grid = cfg_.batch.interval.count_micros();
      const std::int64_t s = start.since_origin().count_micros();
      TimePoint flush_at =
          TimePoint::at(Duration::micros((s + grid - 1) / grid * grid));
      if (flush_at > latest) flush_at = latest;
      if (flush_at < start) flush_at = start;
      dispatcher_.enqueue(truth.name(), flush_at, std::move(run));
    } else {
      sim_.schedule_at(std::max(start, resumed),
                       [run = std::move(run)]() mutable { run([] {}); });
    }
  });
}

void Broker::schedule_exact_resolve(const DecisionContext& ctx,
                                    const app::TaskGraph& g,
                                    partition::Environment env,
                                    partition::Partition heuristic) {
  // One exact solve in flight per bucket: a burst of same-bucket misses
  // (the vehicular regime) triggers one solver run, not a storm.
  PlanKey key = quantize(ctx, cfg_.cache);
  if (!resolving_.insert(key).second) return;  // ntco-lint: allow(R6) stage-2 dedup set: one node per distinct in-flight bucket, off the fast answer path

  // Measured ring pressure stretches the resolve: saturated rings delay
  // refinement (stage 2), never the fast answer (stage 1).
  const double pressure =
      backpressure_ == nullptr
          ? 0.0
          : std::clamp(backpressure_->pressure(), 0.0, 1.0);
  const Duration solve =
      cfg_.plan_cost_base +
      cfg_.plan_cost_per_component * static_cast<double>(g.component_count());
  const Duration latency = solve * (1.0 + pressure);

  sim_.schedule_after(latency, [this, key = std::move(key), ctx, g = &g,
                                env = std::move(env),
                                heuristic = std::move(heuristic)]() mutable {
    resolving_.erase(key);
    const TimePoint now = sim_.now();
    core::DeploymentPlan exact = controller_.prepare(*g, partitioner_, env);
    const bool agreed = exact.partition == heuristic;
    ++twostage_.resolves;
    if (agreed) ++twostage_.agreements;
    if (m_.resolves) m_.resolves->add();
    if (agreed && m_.agreements) m_.agreements->add();
    if (trace_)
      obs::emit(trace_, now, "broker.twostage.resolve",
                {{"workload", std::string_view(ctx.workload)},
                 {"agreed", agreed}});
    cache_.insert(ctx, std::move(exact), now);  // ntco-lint: allow(R6) stage-2 publication: one cache write per resolved bucket, off the serving path
  });
}

}  // namespace ntco::broker
