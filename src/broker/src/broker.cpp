#include "ntco/broker/broker.hpp"

#include <algorithm>
#include <utility>

#include "ntco/common/contracts.hpp"
#include "ntco/partition/cost_model.hpp"

namespace ntco::broker {

Broker::Broker(sim::Simulator& sim, serverless::Platform& platform,
               core::OffloadController& controller,
               const partition::Partitioner& partitioner, BrokerConfig cfg)
    : sim_(sim),
      platform_(platform),
      controller_(controller),
      partitioner_(partitioner),
      cfg_(std::move(cfg)),
      scheduler_(platform, cfg_.defer),
      cache_(cfg_.cache),
      admission_(cfg_.admission),
      dispatcher_(sim, cfg_.batch) {}

void Broker::attach_observer(obs::TraceSink* trace,
                             obs::MetricsRegistry* metrics) {
  trace_ = trace;
  m_ = {};
  if (metrics != nullptr) {
    m_.requests = &metrics->counter("broker.requests");
    m_.completed = &metrics->counter("broker.completed");
    m_.failed = &metrics->counter("broker.failed");
    m_.decision_us = &metrics->summary("broker.decision_us");
    m_.job_cost_usd = &metrics->summary("broker.job_cost_usd");
    m_.completion_s = &metrics->summary("broker.completion_s");
  }
  cache_.attach_observer(trace, metrics);
  admission_.attach_observer(trace, metrics);
  dispatcher_.attach_observer(trace, metrics);
}

Duration Broker::admission_estimate(const app::TaskGraph& g) const {
  // Coarse on purpose: admission runs *before* planning, so all it can
  // afford is "all the work, remotely, at the reference memory".
  const DataSize ref =
      platform_.quantize_memory(controller_.config().reference_memory);
  return platform_.exec_time(ref, g.total_work());
}

void Broker::serve(ServeRequest req,
                   // ntco-lint: allow(R6) type-erased API boundary: the callback is bound once per request, off the decision fast path
                   std::function<void(const ServeOutcome&)> done) {
  NTCO_EXPECTS(req.app != nullptr);
  NTCO_EXPECTS(req.battery >= 0.0 && req.battery <= 1.0);
  NTCO_EXPECTS(req.bandwidth_scale > 0.0);
  NTCO_EXPECTS(!req.slack.is_negative());
  ++stats_.requests;
  if (m_.requests) m_.requests->add();
  attempt(std::move(req), sim_.now(), 0, std::move(done), /*is_retry=*/false);
}

void Broker::attempt(ServeRequest req, TimePoint released,
                     std::uint64_t deferrals,
                     // ntco-lint: allow(R6) completion callback threaded through by move, no rebinding per hop
                     std::function<void(const ServeOutcome&)> done,
                     bool is_retry) {
  if (is_retry) admission_.retry_resolved();
  const TimePoint now = sim_.now();
  const TimePoint deadline = released + req.slack;
  const AdmissionDecision d =
      admission_.decide(now, deadline, admission_estimate(*req.app));

  switch (d.verdict) {
    case AdmissionVerdict::Admitted:
      decide_and_dispatch(std::move(req), released, deferrals,
                          std::move(done));
      return;
    case AdmissionVerdict::Deferred:
      // ntco-lint: allow(R9) deferral retry handler: runs on the admission backoff path, heap fallback is acceptable there
      sim_.schedule_at(d.retry_at, [this, req = std::move(req), released,
                                    deferrals,
                                    done = std::move(done)]() mutable {
        attempt(std::move(req), released, deferrals + 1, std::move(done),
                /*is_retry=*/true);
      });
      return;
    case AdmissionVerdict::Shed: {
      ++stats_.shed;
      ServeOutcome out;
      out.status = ServeStatus::Shed;
      out.shed_reason = d.reason;
      out.released = released;
      out.finished = now;
      out.deferrals = deferrals;
      if (done) done(out);
      return;
    }
  }
}

void Broker::decide_and_dispatch(ServeRequest req, TimePoint released,
                                 std::uint64_t deferrals,
                                 // ntco-lint: allow(R6) completion callback arrives by move from attempt(), no fresh binding
                                 std::function<void(const ServeOutcome&)> done) {
  const app::TaskGraph& g = *req.app;
  const TimePoint now = sim_.now();

  // The user's link quality perturbs the nominal planning environment;
  // that perturbed environment is both what the partitioner sees and what
  // the cache key quantizes.
  partition::Environment env = controller_.make_environment(g);
  env.uplink = env.uplink * req.bandwidth_scale;
  env.downlink = env.downlink * req.bandwidth_scale;

  DecisionContext ctx;
  ctx.workload = g.name();
  ctx.uplink = env.uplink;
  ctx.rtt = env.uplink_latency + env.downlink_latency;
  ctx.battery = req.battery;
  ctx.hour = static_cast<int>(
      (now.since_origin().count_micros() / 3'600'000'000LL) % 24);

  // The cache hands back a pointer that the next mutation invalidates, so
  // the execution path owns an immutable copy.
  std::shared_ptr<const core::DeploymentPlan> plan;
  bool hit = false;
  if (cfg_.cache_enabled) {
    if (const core::DeploymentPlan* found = cache_.lookup(ctx, now)) {
      plan = std::make_shared<const core::DeploymentPlan>(*found);  // ntco-lint: allow(R6) plan snapshot must outlive async dispatch; the cache row it copies is mutation-invalidated
      hit = true;
    }
  }
  if (plan == nullptr) {
    core::DeploymentPlan fresh = controller_.prepare(g, partitioner_, env);
    if (cfg_.cache_enabled) cache_.insert(ctx, fresh, now);  // ntco-lint: allow(R6) cache-miss path only: one insert per newly planned workload
    plan = std::make_shared<const core::DeploymentPlan>(std::move(fresh));  // ntco-lint: allow(R6) plan snapshot must outlive async dispatch
  }

  const Duration decision =
      hit ? cfg_.hit_cost
          : cfg_.plan_cost_base +
                cfg_.plan_cost_per_component *
                    static_cast<double>(g.component_count());
  if (m_.decision_us)
    m_.decision_us->add(static_cast<double>(decision.count_micros()));

  // The decision itself takes simulated time; dispatch resumes after it.
  // ntco-lint: allow(R9) dispatch continuation carries the plan handle and completion callback; deliberate heap fallback
  sim_.schedule_after(decision, [this, req = std::move(req), released,
                                 deferrals, plan = std::move(plan), hit,
                                 decision, done = std::move(done)]() mutable {
    const app::TaskGraph& truth = *req.app;
    const TimePoint resumed = sim_.now();
    const TimePoint deadline = released + req.slack;
    const Duration slack_left =
        deadline > resumed ? deadline - resumed : Duration::zero();
    const sched::DeferredJob job{truth.name(), truth.total_work(), slack_left};
    const Duration est = plan->predicted.latency;
    const TimePoint start = scheduler_.plan_start(resumed, job, est);

    BatchDispatcher::Job run =
        [this, plan, truth_ptr = req.app, released, hit, decision, deferrals,
         // ntco-lint: allow(R6) batch completion hook: bound once per dispatched job
         done = std::move(done)](std::function<void()> batch_done) mutable {
          controller_.execute_async(
              *plan, *truth_ptr,
              [this, plan, released, hit, decision, deferrals,
               done = std::move(done), batch_done = std::move(batch_done)](
                  const core::ExecutionReport& r) mutable {
                ServeOutcome out;
                out.status = r.failed ? ServeStatus::Failed
                                      : ServeStatus::Completed;
                out.cache_hit = hit;
                out.decision_latency = decision;
                out.released = released;
                out.finished = sim_.now();
                out.deferrals = deferrals;
                out.report = r;
                if (r.failed) {
                  ++stats_.failed;
                  if (m_.failed) m_.failed->add();
                } else {
                  ++stats_.completed;
                  if (m_.completed) m_.completed->add();
                }
                if (m_.job_cost_usd)
                  m_.job_cost_usd->add(r.cloud_cost.to_usd());
                if (m_.completion_s)
                  m_.completion_s->add((out.finished - released).to_seconds());
                if (batch_done) batch_done();
                if (done) done(out);
              });
        };

    if (cfg_.batching_enabled) {
      // Align the start up to the batch grid so compatible users flush
      // together, but never past the latest deadline-safe start.
      const TimePoint latest = scheduler_.latest_start(resumed, job, est);
      const std::int64_t grid = cfg_.batch.interval.count_micros();
      const std::int64_t s = start.since_origin().count_micros();
      TimePoint flush_at =
          TimePoint::at(Duration::micros((s + grid - 1) / grid * grid));
      if (flush_at > latest) flush_at = latest;
      if (flush_at < start) flush_at = start;
      dispatcher_.enqueue(truth.name(), flush_at, std::move(run));
    } else {
      sim_.schedule_at(std::max(start, resumed),
                       [run = std::move(run)]() mutable { run([] {}); });
    }
  });
}

}  // namespace ntco::broker
