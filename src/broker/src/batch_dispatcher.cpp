#include "ntco/broker/batch_dispatcher.hpp"

#include <algorithm>
#include <utility>

#include "ntco/common/contracts.hpp"

namespace ntco::broker {

BatchDispatcher::BatchDispatcher(sim::Simulator& sim, BatchConfig cfg)
    : sim_(sim), cfg_(cfg) {
  NTCO_EXPECTS(cfg_.max_batch > 0);
  NTCO_EXPECTS(cfg_.lanes > 0);
  NTCO_EXPECTS(cfg_.interval > Duration::zero());
}

void BatchDispatcher::attach_observer(obs::TraceSink* trace,
                                      obs::MetricsRegistry* metrics) {
  trace_ = trace;
  m_ = {};
  if (metrics != nullptr) {
    m_.batches = &metrics->counter("broker.batch.batches");
    m_.jobs = &metrics->counter("broker.batch.jobs");
    m_.sealed = &metrics->counter("broker.batch.sealed");
  }
}

void BatchDispatcher::enqueue(const std::string& group, TimePoint flush_at,
                              Job job) {
  NTCO_EXPECTS(job != nullptr);
  const TimePoint at = std::max(flush_at, sim_.now());
  const Key key{group, at.since_origin().count_micros()};
  auto [it, inserted] = pending_.try_emplace(key);
  Pending& batch = it->second;
  if (inserted) {
    batch.flush_event = sim_.schedule_at(at, [this, key] { flush(key); });
  }
  batch.jobs.push_back(std::move(job));
  if (batch.jobs.size() >= cfg_.max_batch) {
    // Seal: the batch stops growing but still flushes at its aligned
    // instant — dispatching now would leave the price window the instant
    // was chosen for. Later arrivals re-open the key with a fresh event.
    // The jobs move straight into the handler: InlineHandler is move-only,
    // so the shared_ptr hop std::function's copyability used to force is
    // gone.
    std::vector<Job> sealed = std::move(batch.jobs);
    sim_.cancel(batch.flush_event);
    pending_.erase(it);
    // ntco-lint: allow(R9) sealed-batch handler must own the group name past the caller; seal is the rare overflow path
    sim_.schedule_at(at, [this, group, jobs = std::move(sealed)]() mutable {
      release(group, std::move(jobs), /*sealed=*/true);
    });
  }
}

void BatchDispatcher::flush(const Key& key) {
  const auto it = pending_.find(key);
  NTCO_EXPECTS(it != pending_.end());
  std::vector<Job> jobs = std::move(it->second.jobs);
  pending_.erase(it);
  release(key.group, std::move(jobs), /*sealed=*/false);
}

void BatchDispatcher::release(const std::string& group, std::vector<Job> jobs,
                              bool sealed) {
  ++stats_.batches;
  stats_.jobs_dispatched += jobs.size();
  if (sealed) ++stats_.sealed;
  if (m_.batches) {
    m_.batches->add();
    m_.jobs->add(jobs.size());
    if (sealed) m_.sealed->add();
  }
  if (trace_)
    obs::emit(trace_, sim_.now(), "broker.batch_flush",
              {{"group", std::string_view(group)},
               {"jobs", jobs.size()},
               {"sealed", sealed}});

  // Round-robin the batch over `lanes` sequential chains: lane l runs jobs
  // l, l+lanes, l+2*lanes, ... back to back, so every job after the first
  // in its lane finds the warm instances its predecessor just released.
  const std::size_t lanes = std::min(cfg_.lanes, jobs.size());
  std::vector<std::shared_ptr<std::vector<Job>>> lane_jobs;
  lane_jobs.reserve(lanes);
  for (std::size_t l = 0; l < lanes; ++l)
    lane_jobs.push_back(std::make_shared<std::vector<Job>>());
  for (std::size_t i = 0; i < jobs.size(); ++i)
    lane_jobs[i % lanes]->push_back(std::move(jobs[i]));
  for (std::size_t l = 0; l < lanes; ++l) run_lane(lane_jobs[l], 0);
}

void BatchDispatcher::run_lane(std::shared_ptr<std::vector<Job>> lane,
                               std::size_t next) {
  if (next >= lane->size()) return;
  Job& job = (*lane)[next];
  job([this, lane = std::move(lane), next]() mutable {
    run_lane(std::move(lane), next + 1);
  });
}

}  // namespace ntco::broker
