#include "ntco/broker/plan_cache.hpp"

#include <algorithm>
#include <cmath>

#include "ntco/common/contracts.hpp"

namespace ntco::broker {

namespace {

/// Signed log2 bucket of a strictly positive quantity; values at or below
/// zero collapse into the lowest bucket rather than producing -inf.
int log2_bucket(double v) {
  if (v <= 1e-9) return -64;
  return static_cast<int>(std::llround(std::log2(v)));
}

}  // namespace

PlanKey quantize(const DecisionContext& ctx, const PlanCacheConfig& cfg) {
  NTCO_EXPECTS(cfg.battery_buckets > 0);
  NTCO_EXPECTS(cfg.hours_per_window > 0);
  // A width that does not divide 24 would leave a ragged final window
  // (5 h windows -> window 4 spans only 4 h) whose thinner population
  // skews hit rates across midnight; reject it outright.
  NTCO_EXPECTS(24 % cfg.hours_per_window == 0);
  PlanKey key;
  key.workload = ctx.workload;
  key.bw_bucket = log2_bucket(ctx.uplink.to_mbps());
  key.rtt_bucket = log2_bucket(ctx.rtt.to_millis());
  const int b = static_cast<int>(ctx.battery *
                                 static_cast<double>(cfg.battery_buckets));
  key.battery_bucket = std::clamp(b, 0, cfg.battery_buckets - 1);
  key.window = ((ctx.hour % 24) + 24) % 24 / cfg.hours_per_window;
  return key;
}

PlanCache::PlanCache(PlanCacheConfig cfg) : cfg_(cfg) {
  NTCO_EXPECTS(cfg_.capacity > 0);
  NTCO_EXPECTS(cfg_.battery_buckets > 0);
  NTCO_EXPECTS(cfg_.hours_per_window > 0);
  NTCO_EXPECTS(24 % cfg_.hours_per_window == 0);
  NTCO_EXPECTS(cfg_.hysteresis >= 0.0);
  NTCO_EXPECTS(cfg_.battery_hysteresis >= 0.0);
}

void PlanCache::attach_observer(obs::TraceSink* trace,
                                obs::MetricsRegistry* metrics) {
  trace_ = trace;
  m_ = {};
  if (metrics != nullptr) {
    m_.hits = &metrics->counter("broker.cache.hits");
    m_.hysteresis_hits = &metrics->counter("broker.cache.hysteresis_hits");
    m_.misses = &metrics->counter("broker.cache.misses");
    m_.evictions = &metrics->counter("broker.cache.evictions");
    m_.expiries = &metrics->counter("broker.cache.expiries");
  }
}

bool PlanCache::expired(const Entry& e, TimePoint now) const {
  return now - e.inserted > cfg_.ttl;
}

bool PlanCache::within_hysteresis(const DecisionContext& ctx,
                                  const DecisionContext& planned) const {
  const auto rel = [](double a, double b) {
    const double base = std::max(std::abs(b), 1e-9);
    return std::abs(a - b) / base;
  };
  // Bandwidth and RTT drift are judged *relatively* against `hysteresis`;
  // battery is an absolute state-of-charge delta with its own knob —
  // conflating them under one threshold silently mixed "5% slower link"
  // with "5 percentage points less charge".
  return rel(ctx.uplink.to_mbps(), planned.uplink.to_mbps()) <=
             cfg_.hysteresis &&
         rel(ctx.rtt.to_millis(), planned.rtt.to_millis()) <=
             cfg_.hysteresis &&
         std::abs(ctx.battery - planned.battery) <= cfg_.battery_hysteresis;
}

const core::DeploymentPlan* PlanCache::lookup(const DecisionContext& ctx,
                                              TimePoint now) {
  const PlanKey exact = quantize(ctx, cfg_);

  // Probes a single key; erases (and counts) an expired occupant. Returns
  // the live entry or nullptr.
  const auto probe = [&](const PlanKey& key) -> Entry* {
    const auto it = entries_.find(key);
    if (it == entries_.end()) return nullptr;
    if (expired(it->second, now)) {
      entries_.erase(it);
      ++stats_.expiries;
      if (m_.expiries) m_.expiries->add();
      return nullptr;
    }
    return &it->second;
  };

  if (Entry* e = probe(exact); e != nullptr) {
    e->last_used = ++tick_;
    ++stats_.hits;
    if (m_.hits) m_.hits->add();
    if (trace_)
      obs::emit(trace_, now, "broker.plan_cache_hit",
                {{"workload", std::string_view(ctx.workload)},
                 {"hysteresis", false}});
    return &e->plan;
  }

  // Bucket-boundary hysteresis: a context that just crossed into an empty
  // neighbouring bucket may still be close (in raw terms) to the plan next
  // door. Probe the six axis neighbours in a fixed order and reuse the
  // first whose planning context is within the drift envelope.
  const PlanKey neighbours[6] = {
      {exact.workload, exact.bw_bucket - 1, exact.rtt_bucket,
       exact.battery_bucket, exact.window},
      {exact.workload, exact.bw_bucket + 1, exact.rtt_bucket,
       exact.battery_bucket, exact.window},
      {exact.workload, exact.bw_bucket, exact.rtt_bucket - 1,
       exact.battery_bucket, exact.window},
      {exact.workload, exact.bw_bucket, exact.rtt_bucket + 1,
       exact.battery_bucket, exact.window},
      {exact.workload, exact.bw_bucket, exact.rtt_bucket,
       exact.battery_bucket - 1, exact.window},
      {exact.workload, exact.bw_bucket, exact.rtt_bucket,
       exact.battery_bucket + 1, exact.window},
  };
  for (const PlanKey& key : neighbours) {
    Entry* e = probe(key);
    if (e == nullptr || !within_hysteresis(ctx, e->planned)) continue;
    e->last_used = ++tick_;
    ++stats_.hysteresis_hits;
    if (m_.hysteresis_hits) m_.hysteresis_hits->add();
    if (trace_)
      obs::emit(trace_, now, "broker.plan_cache_hit",
                {{"workload", std::string_view(ctx.workload)},
                 {"hysteresis", true}});
    return &e->plan;
  }

  ++stats_.misses;
  if (m_.misses) m_.misses->add();
  if (trace_)
    obs::emit(trace_, now, "broker.plan_cache_miss",
              {{"workload", std::string_view(ctx.workload)}});
  return nullptr;
}

void PlanCache::insert(const DecisionContext& ctx, core::DeploymentPlan plan,
                       TimePoint now) {
  const PlanKey key = quantize(ctx, cfg_);
  Entry& e = entries_[key];
  e.plan = std::move(plan);
  e.planned = ctx;
  e.inserted = now;
  e.last_used = ++tick_;
  if (entries_.size() > cfg_.capacity) evict_lru();
}

void PlanCache::evict_lru() {
  // O(n) sorted-map scan: capacity is small (hundreds) and eviction only
  // runs on insert-over-capacity, so the simplicity beats an intrusive
  // LRU list. Ties cannot happen (ticks are unique).
  auto victim = entries_.begin();
  for (auto it = entries_.begin(); it != entries_.end(); ++it)
    if (it->second.last_used < victim->second.last_used) victim = it;
  entries_.erase(victim);
  ++stats_.evictions;
  if (m_.evictions) m_.evictions->add();
}

}  // namespace ntco::broker
