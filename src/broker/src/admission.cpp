#include "ntco/broker/admission.hpp"

#include <algorithm>

#include "ntco/common/contracts.hpp"

namespace ntco::broker {

AdmissionController::AdmissionController(AdmissionConfig cfg)
    : cfg_(cfg), tokens_(cfg.burst) {
  NTCO_EXPECTS(cfg_.rate_per_second > 0.0);
  NTCO_EXPECTS(cfg_.burst >= 1.0);
  NTCO_EXPECTS(!cfg_.min_defer.is_negative());
}

void AdmissionController::attach_observer(obs::TraceSink* trace,
                                          obs::MetricsRegistry* metrics) {
  trace_ = trace;
  m_ = {};
  if (metrics != nullptr) {
    m_.admitted = &metrics->counter("broker.admission.admitted");
    m_.deferrals = &metrics->counter("broker.admission.deferrals");
    m_.shed = &metrics->counter("broker.admission.shed");
  }
}

void AdmissionController::set_capacity_probe(std::function<double()> probe) {
  capacity_probe_ = std::move(probe);
}

void AdmissionController::set_backpressure_source(
    const dataplane::BackpressureSource* src) {
  backpressure_ = src;
}

double AdmissionController::effective_rate() const {
  if (!capacity_probe_) return cfg_.rate_per_second;
  return cfg_.rate_per_second *
         std::clamp(capacity_probe_(), 0.0, 1.0);
}

void AdmissionController::refill(TimePoint now) {
  NTCO_EXPECTS(now >= last_refill_);
  const double dt = (now - last_refill_).to_seconds();
  tokens_ = std::min(cfg_.burst, tokens_ + dt * effective_rate());
  last_refill_ = now;
}

AdmissionDecision AdmissionController::decide(TimePoint now,
                                              TimePoint deadline,
                                              Duration est) {
  refill(now);

  // Infeasible on arrival: even an immediate admission cannot finish by the
  // deadline, so dispatching would only burn a token on work guaranteed to
  // miss. Shed up front — before the token check — and leave the token for
  // a request that can still make it. This is the one shed that outranks
  // QueueFull: the deadline genuinely is the client's problem here, whereas
  // the QueueFull-first rule below exists to avoid blaming *wait-induced*
  // misses on the client.
  if (now + est > deadline) {
    ++stats_.shed;
    if (m_.shed) m_.shed->add();
    if (trace_)
      obs::emit(trace_, now, "broker.admission_shed",
                {{"reason", "deadline_too_tight"},
                 {"deadline", deadline},
                 {"est", est}});
    return {AdmissionVerdict::Shed, ShedReason::DeadlineTooTight, now};
  }

  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    ++stats_.admitted;
    if (m_.admitted) m_.admitted->add();
    return {AdmissionVerdict::Admitted, ShedReason::None, now};
  }

  // No token: quote a retry time that accounts for the backlog already
  // waiting, so deferred requests drain at the refill rate instead of
  // thundering back together at the next refill.
  const double deficit = 1.0 - tokens_;
  const double backlog = static_cast<double>(stats_.deferred_outstanding);
  // Ring backpressure stretches the quoted wait and shrinks the deferral
  // bound: overload at the serving rings pushes work further into the
  // future (these jobs are non-time-critical) before it sheds anything.
  const double pressure =
      backpressure_ == nullptr
          ? 0.0
          : std::clamp(backpressure_->pressure(), 0.0, 1.0);
  // Quote against the capacity-scaled rate (floored so a stalled refill
  // quotes a finite — if hopeless — wait instead of dividing by zero, and
  // capped so the arithmetic stays inside Duration's range).
  const double rate = std::max(effective_rate(), 1e-6);
  const Duration wait = std::max(
      cfg_.min_defer,
      std::min(Duration::minutes(60),
               Duration::from_seconds((backlog + deficit) * (1.0 + pressure) /
                                      rate)));
  const TimePoint retry_at = now + wait;

  // QueueFull outranks DeadlineTooTight: a full deferral queue sheds the
  // request no matter how much slack it has, and the quoted retry_at is
  // derived from a backlog the request cannot even join — attributing the
  // shed to the client's deadline would misreport capacity exhaustion as
  // a client-side problem (and steer SLO dashboards at the wrong knob).
  const auto deferral_bound = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(cfg_.max_deferred) *
                                  (1.0 - pressure)));
  ShedReason reason = ShedReason::None;
  if (stats_.deferred_outstanding >= deferral_bound) {
    reason = ShedReason::QueueFull;
  } else if (retry_at + est > deadline) {
    reason = ShedReason::DeadlineTooTight;
  }

  if (reason != ShedReason::None) {
    ++stats_.shed;
    if (m_.shed) m_.shed->add();
    if (trace_)
      obs::emit(trace_, now, "broker.admission_shed",
                {{"reason", reason == ShedReason::DeadlineTooTight
                                ? "deadline_too_tight"
                                : "queue_full"},
                 {"deadline", deadline},
                 {"est", est}});
    return {AdmissionVerdict::Shed, reason, retry_at};
  }

  ++stats_.deferrals;
  ++stats_.deferred_outstanding;
  if (m_.deferrals) m_.deferrals->add();
  if (trace_)
    obs::emit(trace_, now, "broker.admission_defer",
              {{"retry_at", retry_at}, {"deadline", deadline}});
  return {AdmissionVerdict::Deferred, ShedReason::None, retry_at};
}

void AdmissionController::retry_resolved() {
  NTCO_EXPECTS(stats_.deferred_outstanding > 0);
  --stats_.deferred_outstanding;
}

}  // namespace ntco::broker
