#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ntco/common/units.hpp"
#include "ntco/obs/metrics.hpp"
#include "ntco/obs/trace.hpp"
#include "ntco/sim/simulator.hpp"

/// \file batch_dispatcher.hpp
/// Cross-user batch dispatch: amortising cold starts over a population.
///
/// sched::Policy::Batched aligns one user's jobs; the dispatcher does the
/// same across *users*. Admitted jobs that target the same group (same
/// workload, hence the same deployed functions) and the same flush instant
/// are collected and released together. A batch that reaches `max_batch`
/// is *sealed* — it stops accepting jobs (later arrivals open a fresh
/// batch under the same key) but still waits for its flush instant, since
/// flushing early would run the jobs outside the price window the instant
/// was aligned to. Within a flushed batch, jobs are
/// split round-robin over `lanes` sequential chains: each lane starts its
/// next job only when the previous one completed, so at most `lanes`
/// instances per function ever run concurrently and every job after a
/// lane's first reuses a warm instance instead of paying a cold start. The
/// lane count trades completion latency (fewer lanes = longer chains)
/// against cold starts (more lanes = more first-in-lane colds).
///
/// Determinism: group state lives in a std::map keyed by (group, flush
/// time), flushes are simulator events, and jobs within a batch keep their
/// enqueue order — so dispatch is a pure function of the request sequence.

namespace ntco::broker {

struct BatchConfig {
  /// Seal a batch once it holds this many jobs (it keeps its flush
  /// instant; later arrivals start a new batch under the same key).
  std::size_t max_batch = 32;
  /// Sequential execution chains per flushed batch.
  std::size_t lanes = 4;
  /// Alignment grid for flush instants (callers round start times up to a
  /// multiple of this; see Broker::serve).
  Duration interval = Duration::minutes(10);
};

struct BatchStats {
  std::uint64_t batches = 0;  ///< flushes executed
  std::uint64_t jobs_dispatched = 0;
  std::uint64_t sealed = 0;  ///< batches closed at max_batch before flushing
};

/// Groups compatible jobs and releases each batch as `lanes` sequential
/// chains on the simulator.
class BatchDispatcher {
 public:
  /// One dispatched job; it must eventually invoke `done` exactly once so
  /// the lane can start its successor.
  using Job = std::function<void(std::function<void()> done)>;

  BatchDispatcher(sim::Simulator& sim, BatchConfig cfg);

  BatchDispatcher(const BatchDispatcher&) = delete;
  BatchDispatcher& operator=(const BatchDispatcher&) = delete;

  /// Queues `job` into the (group, flush_at) batch, scheduling the flush
  /// event on first use of that batch. `flush_at` is clamped to now.
  void enqueue(const std::string& group, TimePoint flush_at, Job job);

  /// Batches currently waiting for their flush instant.
  [[nodiscard]] std::size_t open_batches() const { return pending_.size(); }
  [[nodiscard]] const BatchStats& stats() const { return stats_; }
  [[nodiscard]] const BatchConfig& config() const { return cfg_; }

  /// Attaches observability. `trace` receives "broker.batch_flush";
  /// `metrics` hosts the "broker.batch.*" counters. Either may be null.
  void attach_observer(obs::TraceSink* trace, obs::MetricsRegistry* metrics);

 private:
  struct Key {
    std::string group;
    std::int64_t at_us = 0;  ///< flush TimePoint, µs since origin

    auto operator<=>(const Key&) const = default;
  };
  struct Pending {
    std::vector<Job> jobs;
    sim::EventId flush_event = sim::kNoEvent;
  };

  void flush(const Key& key);
  void release(const std::string& group, std::vector<Job> jobs, bool sealed);
  void run_lane(std::shared_ptr<std::vector<Job>> lane, std::size_t next);

  struct Instruments {
    obs::Counter* batches = nullptr;
    obs::Counter* jobs = nullptr;
    obs::Counter* sealed = nullptr;
  };

  sim::Simulator& sim_;
  BatchConfig cfg_;
  std::map<Key, Pending> pending_;
  BatchStats stats_;
  obs::TraceSink* trace_ = nullptr;
  Instruments m_;
};

}  // namespace ntco::broker
