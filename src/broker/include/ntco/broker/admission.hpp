#pragma once

#include <cstdint>
#include <functional>

#include "ntco/common/units.hpp"
#include "ntco/dataplane/backpressure.hpp"
#include "ntco/obs/metrics.hpp"
#include "ntco/obs/trace.hpp"

/// \file admission.hpp
/// Deadline-aware admission control for the offload broker.
///
/// Planning capacity is finite: the broker can only compute (or even serve)
/// so many decisions per second. A token bucket models that budget in
/// simulated time — `rate_per_second` sustained decisions with bursts up to
/// `burst`. A request that finds no token is not dropped outright; the
/// paper's whole premise is that these jobs are *non-time-critical*, so the
/// natural reaction to overload is to wait:
///   - **defer** when the request's slack survives the wait: it retries at
///     `retry_at`, quoted from the refill rate *and* the backlog already
///     waiting, so deferred requests drain at the sustained rate instead
///     of retrying in lockstep;
///   - **shed** with an explicit reason when it cannot — either the
///     deferral queue is already at its bound (QueueFull) or the deadline
///     is too tight to absorb the wait (DeadlineTooTight). QueueFull is
///     checked first: a full queue sheds regardless of slack, so a
///     request that hits both conditions reports the capacity problem,
///     not the deadline.
/// One check runs before any of that: a request that is infeasible *on
/// arrival* (`now + est > deadline` — it would miss even if admitted this
/// instant) is shed as DeadlineTooTight without consuming a token. That
/// shed is genuinely the client's problem, so it precedes the QueueFull
/// attribution rule, which only governs wait-induced misses.
/// Shedding is loud by design: a silent drop would read as a simulator bug,
/// an explicit reason is an SLO signal.
///
/// Everything is computed from simulated TimePoints, so admission decisions
/// are deterministic and fleet-safe (each shard owns its controller).

namespace ntco::broker {

struct AdmissionConfig {
  /// Sustained admission throughput (token refill rate).
  double rate_per_second = 50.0;
  /// Bucket capacity: decisions admitted back-to-back before throttling.
  double burst = 10.0;
  /// Bound on concurrently deferred (waiting-to-retry) requests.
  std::size_t max_deferred = 4096;
  /// Floor on the deferral wait, so retries never busy-spin.
  Duration min_defer = Duration::seconds(1);
};

enum class AdmissionVerdict : std::uint8_t { Admitted, Deferred, Shed };

enum class ShedReason : std::uint8_t {
  None,
  /// now + est (infeasible on arrival) or retry_at + est (cannot absorb
  /// the deferral wait) overshoots the deadline.
  DeadlineTooTight,
  QueueFull,  ///< max_deferred requests already waiting
};

struct AdmissionDecision {
  AdmissionVerdict verdict = AdmissionVerdict::Admitted;
  ShedReason reason = ShedReason::None;
  /// When a Deferred request should retry (unset otherwise).
  TimePoint retry_at;
};

struct AdmissionStats {
  std::uint64_t admitted = 0;
  std::uint64_t deferrals = 0;  ///< defer verdicts (a request may defer twice)
  std::uint64_t shed = 0;
  std::size_t deferred_outstanding = 0;  ///< currently waiting to retry
};

/// Token-bucket admission controller over simulated time.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig cfg);

  /// Decides one request at simulated `now`, due at `deadline`, whose
  /// execution is expected to take `est`. Pre: now is non-decreasing
  /// across calls (simulated time only moves forward).
  [[nodiscard]] AdmissionDecision decide(TimePoint now, TimePoint deadline,
                                         Duration est);

  /// A previously Deferred request is back (its retry fired); call before
  /// the retry's decide() so the queue bound frees the slot first.
  void retry_resolved();

  [[nodiscard]] const AdmissionStats& stats() const { return stats_; }
  [[nodiscard]] const AdmissionConfig& config() const { return cfg_; }

  /// Attaches observability. `trace` receives "broker.admission_defer" /
  /// "broker.admission_shed"; `metrics` hosts the "broker.admission.*"
  /// counters. Either may be null.
  void attach_observer(obs::TraceSink* trace, obs::MetricsRegistry* metrics);

  /// Couples the token refill to downstream serving capacity: the probe is
  /// read at each refill and its value, clamped to [0, 1], scales the
  /// sustained rate (1 = full capacity, 0 = refill stalls; bursts already
  /// banked stay spendable). Wire `continuum::Federation::capacity_factor`
  /// here and admission tightens while federation sites are down, instead
  /// of cheerfully admitting work the continuum will only park. Null
  /// clears the probe. The probe must be deterministic in simulated time.
  void set_capacity_probe(std::function<double()> probe);

  /// Couples the deferral policy to *measured* serving backpressure: at
  /// each decide(), the source's pressure() (clamped to [0, 1]) shrinks
  /// the effective deferral-queue bound to max_deferred·(1−p) (floored at
  /// one slot) and stretches the quoted retry wait by (1+p) — saturated
  /// rings shed earlier and spread retries wider, instead of the broker
  /// introspecting a mutex-guarded queue depth. Null clears the source;
  /// the pointee must outlive the controller.
  ///
  /// Determinism contract: artifact-producing runs must wire a source
  /// that is a pure function of simulated state (tests use stubs) or
  /// leave it unwired; dataplane::Engine::pressure() is wall-clock racy
  /// and belongs only in live-serving setups.
  void set_backpressure_source(const dataplane::BackpressureSource* src);

 private:
  void refill(TimePoint now);
  [[nodiscard]] double effective_rate() const;

  struct Instruments {
    obs::Counter* admitted = nullptr;
    obs::Counter* deferrals = nullptr;
    obs::Counter* shed = nullptr;
  };

  AdmissionConfig cfg_;
  std::function<double()> capacity_probe_;
  const dataplane::BackpressureSource* backpressure_ = nullptr;
  double tokens_;
  TimePoint last_refill_;
  AdmissionStats stats_;
  obs::TraceSink* trace_ = nullptr;
  Instruments m_;
};

}  // namespace ntco::broker
