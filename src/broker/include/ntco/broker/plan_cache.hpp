#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "ntco/common/units.hpp"
#include "ntco/core/controller.hpp"
#include "ntco/obs/metrics.hpp"
#include "ntco/obs/trace.hpp"

/// \file plan_cache.hpp
/// Deterministic LRU+TTL cache of DeploymentPlans keyed by a quantized
/// serving context.
///
/// Population-scale serving recomputes the profile→partition→allocate
/// decision once per *decision context*, not once per user: two phones on
/// the same workload, in the same bandwidth/RTT regime, at a similar
/// battery level and inside the same tariff window get the same plan, so
/// the broker shares it. The raw context is quantized into coarse buckets
/// (log2 bandwidth, log2 RTT, battery quarters, price window) and the
/// cached plan is reused until
///   - the entry ages past its TTL at *simulated* time (staleness bound),
///   - capacity pressure evicts it (least-recently-used first), or
///   - the live context drifts past the hysteresis threshold.
/// Hysteresis is what keeps a user oscillating around a bucket boundary
/// from replanning on every request: a lookup that misses its exact bucket
/// still reuses an adjacent bucket's plan while the *raw* drift from that
/// plan's planning context stays within the drift envelope (relative
/// bandwidth / RTT drift within `hysteresis`, absolute battery drift
/// within `battery_hysteresis`). Only genuine regime changes replan.
///
/// Determinism: entries live in a std::map (sorted key order), LRU state is
/// a monotonic use tick, and all inputs are simulated quantities — cache
/// behaviour is a pure function of the request sequence, so fleet shards
/// each owning a private cache reproduce byte-identically at any
/// NTCO_THREADS (see tests/broker_test.cpp).

namespace ntco::broker {

/// Raw serving context one decision is made under.
struct DecisionContext {
  std::string workload;  ///< task-graph identity (must imply graph shape)
  DataRate uplink;       ///< current uplink estimate
  Duration rtt;          ///< current round-trip latency estimate
  double battery = 1.0;  ///< UE state of charge in [0, 1]
  int hour = 0;          ///< simulated hour of day (tariff proxy), [0, 24)
};

/// Quantized cache key; ordering is lexicographic over all fields.
struct PlanKey {
  std::string workload;
  int bw_bucket = 0;       ///< round(log2(uplink Mbps))
  int rtt_bucket = 0;      ///< round(log2(RTT ms))
  int battery_bucket = 0;  ///< floor(battery * battery_buckets), clamped
  int window = 0;          ///< hour / hours_per_window

  auto operator<=>(const PlanKey&) const = default;
};

struct PlanCacheConfig {
  std::size_t capacity = 256;          ///< entries; LRU eviction beyond
  Duration ttl = Duration::hours(1);   ///< staleness bound at simulated time
  /// Relative bandwidth / RTT drift tolerated before a neighbouring-bucket
  /// plan stops being reusable.
  double hysteresis = 0.25;
  /// Absolute battery drift (state-of-charge points, battery is in [0, 1])
  /// tolerated before a neighbouring-bucket plan stops being reusable.
  /// Deliberately a separate knob from `hysteresis`: a 5% bandwidth drift
  /// and a 5-percentage-point battery drift are different physical
  /// quantities, and a single knob silently conflated them.
  double battery_hysteresis = 0.25;
  int battery_buckets = 4;
  /// Price-window width. Contract: must divide 24 evenly, otherwise the
  /// final window of the day would be ragged (e.g. 5 h windows leave
  /// window 4 spanning only 4 h) and skew hit rates across midnight.
  int hours_per_window = 6;
};

/// Hit/miss accounting (also mirrored into obs instruments when attached).
struct PlanCacheStats {
  std::uint64_t hits = 0;             ///< exact-bucket hits
  std::uint64_t hysteresis_hits = 0;  ///< adjacent-bucket hits within drift
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;  ///< capacity evictions (LRU)
  std::uint64_t expiries = 0;   ///< TTL expiries observed by lookups

  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = hits + hysteresis_hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits + hysteresis_hits) /
                            static_cast<double>(total);
  }
};

/// Quantizes a raw context under a config's bucket geometry.
[[nodiscard]] PlanKey quantize(const DecisionContext& ctx,
                               const PlanCacheConfig& cfg);

/// Deterministic LRU+TTL plan cache. Returned plan pointers are valid only
/// until the next insert()/lookup() (either may evict); copy the plan out
/// before yielding to the simulator.
class PlanCache {
 public:
  explicit PlanCache(PlanCacheConfig cfg);

  /// Looks up a reusable plan for `ctx` at simulated time `now`. Counts a
  /// hit (exact bucket), a hysteresis hit (adjacent bucket within drift),
  /// or a miss; expired entries are erased and counted on the way.
  [[nodiscard]] const core::DeploymentPlan* lookup(const DecisionContext& ctx,
                                                   TimePoint now);

  /// Caches `plan` under ctx's exact bucket (overwriting any previous
  /// occupant), evicting the least-recently-used entry beyond capacity.
  void insert(const DecisionContext& ctx, core::DeploymentPlan plan,
              TimePoint now);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const PlanCacheStats& stats() const { return stats_; }
  [[nodiscard]] const PlanCacheConfig& config() const { return cfg_; }

  /// Attaches observability. `trace` receives "broker.plan_cache_hit" /
  /// "broker.plan_cache_miss" events; `metrics` hosts the
  /// "broker.cache.*" counters. Either may be null.
  void attach_observer(obs::TraceSink* trace, obs::MetricsRegistry* metrics);

 private:
  struct Entry {
    core::DeploymentPlan plan;
    DecisionContext planned;  ///< raw context the plan was computed for
    TimePoint inserted;
    std::uint64_t last_used = 0;
  };

  /// True when `ctx` is within the hysteresis envelope of `planned`.
  [[nodiscard]] bool within_hysteresis(const DecisionContext& ctx,
                                       const DecisionContext& planned) const;
  void evict_lru();
  [[nodiscard]] bool expired(const Entry& e, TimePoint now) const;

  struct Instruments {
    obs::Counter* hits = nullptr;
    obs::Counter* hysteresis_hits = nullptr;
    obs::Counter* misses = nullptr;
    obs::Counter* evictions = nullptr;
    obs::Counter* expiries = nullptr;
  };

  PlanCacheConfig cfg_;
  // std::map: deterministic iteration for eviction scans and stable
  // addresses for the returned plan pointers between mutations.
  std::map<PlanKey, Entry> entries_;
  std::uint64_t tick_ = 0;
  PlanCacheStats stats_;
  obs::TraceSink* trace_ = nullptr;
  Instruments m_;
};

}  // namespace ntco::broker
