#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>

#include "ntco/app/task_graph.hpp"
#include "ntco/broker/admission.hpp"
#include "ntco/dataplane/backpressure.hpp"
#include "ntco/broker/batch_dispatcher.hpp"
#include "ntco/broker/plan_cache.hpp"
#include "ntco/common/units.hpp"
#include "ntco/core/controller.hpp"
#include "ntco/obs/metrics.hpp"
#include "ntco/obs/trace.hpp"
#include "ntco/partition/cost_model.hpp"
#include "ntco/partition/partitioners.hpp"
#include "ntco/sched/deferred_scheduler.hpp"
#include "ntco/serverless/platform.hpp"
#include "ntco/sim/simulator.hpp"
#include "ntco/stats/accumulator.hpp"

/// \file broker.hpp
/// The serving layer: one broker fronting OffloadController for a
/// population of users.
///
/// F5-style experiments recompute the full profile→partition→allocate
/// decision independently for every simulated user — the per-request
/// "compiled plan" redundancy that scalable offloading pipelines eliminate.
/// The broker closes that gap with three layers in front of the
/// controller:
///
///   serve() ─ AdmissionController ─ PlanCache ─ BatchDispatcher ─ core
///
/// 1. **Admission**: a token bucket bounds decision throughput; requests
///    with slack defer under overload, tight ones shed loudly.
/// 2. **Plan cache**: the decision context (workload, link buckets,
///    battery, price window) keys a cached DeploymentPlan; hits skip both
///    the planning work (modelled as simulated decision latency) and —
///    with the controller's fingerprint-idempotent deployment — the
///    redundant function deploys that previously cold-started per user.
/// 3. **Batch dispatch**: starts chosen by sched::DeferredScheduler are
///    aligned on a price-window grid and released as lane-chained batches,
///    so warm instances amortise across users, not just within one user.
///
/// With `two_stage_enabled` the miss path splits in two (the
/// dynamic-vehicular pipeline): stage 1 answers every request immediately
/// — cache hit, or a cheap heuristic placement at `heuristic_cost` — and
/// stage 2 resolves the exact solver asynchronously, publishing its plan
/// through the cache so the *next* request in the bucket gets the exact
/// answer. Fast-churn clients (short link residence) never wait multi-ms
/// solver latency; the solver's work drains in the background, stretched
/// by measured dataplane backpressure.
///
/// One broker serves one shard. Fleet runs give every shard its own
/// broker + platform + cache (see bench_f12_broker); merged artifacts are
/// byte-identical at any NTCO_THREADS because nothing here draws on wall
/// clock or unordered iteration.

namespace ntco::broker {

struct BrokerConfig {
  PlanCacheConfig cache;
  AdmissionConfig admission;
  BatchConfig batch;
  sched::DeferredScheduler::Config defer;
  /// Disable to measure the no-cache baseline (every request replans).
  bool cache_enabled = true;
  /// Disable to dispatch each job individually at its planned start.
  bool batching_enabled = true;
  /// Two-stage decision pipeline (the dynamic-vehicular fast path): a
  /// cache miss is answered *immediately* by a cheap heuristic placement
  /// (cost `heuristic_cost`), while the exact solver resolves
  /// asynchronously and refreshes the cache for subsequent requests in
  /// the same bucket. At most one exact solve is in flight per cache
  /// bucket; measured dataplane backpressure stretches the resolve
  /// latency (saturated rings delay refinement, never the fast answer).
  /// Requires cache_enabled (the cache is the stage-1 lookup and the
  /// stage-2 publication point).
  bool two_stage_enabled = false;
  /// Simulated cost of the stage-1 heuristic placement.
  Duration heuristic_cost = Duration::micros(40);
  /// Stage-1 heuristic partitioner; null uses the built-in all-remote
  /// rule (offload everything not pinned — O(components), no search).
  /// Must outlive the broker when set.
  const partition::Partitioner* heuristic_partitioner = nullptr;
  /// Simulated cost of computing a plan from scratch (profile → partition
  /// → allocate): base plus a per-component term. Charged as decision
  /// latency before dispatch.
  Duration plan_cost_base = Duration::millis(2);
  Duration plan_cost_per_component = Duration::micros(300);
  /// Simulated cost of serving a plan from the cache.
  Duration hit_cost = Duration::micros(5);
};

/// One user's offload request. `app` must outlive the serve (the broker
/// executes against it); it doubles as estimate and truth. Under
/// `two_stage_enabled` it must also outlive the asynchronous exact
/// resolve — in practice, keep task graphs alive until the simulator
/// drains.
struct ServeRequest {
  const app::TaskGraph* app = nullptr;
  /// Delay tolerance: the job may finish any time within release + slack.
  Duration slack = Duration::hours(8);
  /// UE state of charge in [0, 1] (part of the decision context).
  double battery = 1.0;
  /// This user's link quality relative to the path's nominal rates.
  double bandwidth_scale = 1.0;
};

enum class ServeStatus : std::uint8_t {
  Completed,  ///< executed; report is the measured run
  Shed,       ///< rejected by admission (see shed_reason)
  Failed,     ///< executed but the run aborted (transfer loss)
};

/// Final word on one request, delivered to serve()'s callback.
struct ServeOutcome {
  ServeStatus status = ServeStatus::Completed;
  ShedReason shed_reason = ShedReason::None;
  bool cache_hit = false;       ///< plan came from the cache
  /// Served by the stage-1 heuristic while the exact solve resolved
  /// asynchronously (two-stage pipeline only).
  bool heuristic_serve = false;
  Duration decision_latency;    ///< simulated planning/serving time
  TimePoint released;           ///< when serve() was called
  TimePoint finished;           ///< when the outcome fired
  std::uint64_t deferrals = 0;  ///< admission retries this request took
  core::ExecutionReport report;  ///< valid unless status == Shed
};

struct BrokerStats {
  std::uint64_t requests = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t shed = 0;
};

/// Two-stage pipeline accounting (zero unless two_stage_enabled).
struct TwoStageStats {
  std::uint64_t fast_serves = 0;  ///< misses answered by the heuristic
  std::uint64_t resolves = 0;     ///< asynchronous exact solves completed
  std::uint64_t agreements = 0;   ///< exact placement == heuristic placement
};

/// Population-scale serving facade over one OffloadController.
class Broker {
 public:
  /// All references must outlive the broker. `partitioner` is shared by
  /// every planning request.
  Broker(sim::Simulator& sim, serverless::Platform& platform,
         core::OffloadController& controller,
         const partition::Partitioner& partitioner, BrokerConfig cfg);

  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  /// Serves one request. The outcome callback fires exactly once — at shed
  /// time, or when the (possibly deferred, batched) execution completes.
  /// Drive the simulator (sim.run()) to make progress.
  void serve(ServeRequest req,
             std::function<void(const ServeOutcome&)> done = {});

  [[nodiscard]] const BrokerStats& stats() const { return stats_; }
  [[nodiscard]] const TwoStageStats& twostage() const { return twostage_; }
  [[nodiscard]] const PlanCache& cache() const { return cache_; }
  [[nodiscard]] const AdmissionController& admission() const {
    return admission_;
  }
  [[nodiscard]] const BatchDispatcher& dispatcher() const {
    return dispatcher_;
  }
  [[nodiscard]] const BrokerConfig& config() const { return cfg_; }

  /// Attaches observability to the broker and its layers. `trace` receives
  /// "broker.*" events; `metrics` hosts the "broker.*" instruments. Either
  /// may be null. Stable names are listed in DESIGN.md ("Observability").
  void attach_observer(obs::TraceSink* trace, obs::MetricsRegistry* metrics);

  /// Forwards to AdmissionController::set_capacity_probe: admission
  /// tightens with downstream serving capacity (e.g. a continuum
  /// federation's capacity_factor) without the broker depending on any
  /// particular capacity provider.
  void set_capacity_probe(std::function<double()> probe) {
    admission_.set_capacity_probe(std::move(probe));
  }

  /// Forwards to AdmissionController::set_backpressure_source: admission
  /// throttles on measured dataplane ring occupancy instead of a mutexed
  /// queue depth (see admission.hpp for the determinism contract). The
  /// two-stage pipeline reads the same source: pressure p stretches the
  /// asynchronous exact-resolve latency by (1+p), so saturated rings slow
  /// refinement down before they slow serving down.
  void set_backpressure_source(const dataplane::BackpressureSource* src) {
    backpressure_ = src;
    admission_.set_backpressure_source(src);
  }

 private:
  /// (Re-)attempts admission; deferred requests loop back here.
  void attempt(ServeRequest req, TimePoint released, std::uint64_t deferrals,
               std::function<void(const ServeOutcome&)> done, bool is_retry);
  /// Past admission: cache lookup or fresh plan, then dispatch.
  void decide_and_dispatch(ServeRequest req, TimePoint released,
                           std::uint64_t deferrals,
                           std::function<void(const ServeOutcome&)> done);
  /// Rough pre-planning duration estimate used by admission: service time
  /// at the reference memory *plus* the wireless leg at the transport's
  /// nominal spec rates scaled by this user's link quality. Checking the
  /// deadline jointly against transfer and service is what gives hard-
  /// deadline (vehicular) populations real shed pressure — a short link
  /// residence cannot absorb a transfer-dominated job no matter how fast
  /// the cloud is.
  [[nodiscard]] Duration admission_estimate(const app::TaskGraph& g,
                                            double bandwidth_scale) const;

  /// Kicks off the asynchronous stage-2 exact solve for `ctx`'s bucket
  /// unless one is already in flight there.
  void schedule_exact_resolve(const DecisionContext& ctx,
                              const app::TaskGraph& g,
                              partition::Environment env,
                              partition::Partition heuristic);
  /// Stage-1 heuristic partitioner (config override or built-in rule).
  [[nodiscard]] const partition::Partitioner& stage1_partitioner() const {
    return cfg_.heuristic_partitioner != nullptr ? *cfg_.heuristic_partitioner
                                                 : all_remote_;
  }

  struct Instruments {
    obs::Counter* requests = nullptr;
    obs::Counter* completed = nullptr;
    obs::Counter* failed = nullptr;
    obs::Counter* fast_serves = nullptr;
    obs::Counter* resolves = nullptr;
    obs::Counter* agreements = nullptr;
    stats::Accumulator* decision_us = nullptr;
    stats::Accumulator* job_cost_usd = nullptr;
    stats::Accumulator* completion_s = nullptr;
  };

  sim::Simulator& sim_;
  serverless::Platform& platform_;
  core::OffloadController& controller_;
  const partition::Partitioner& partitioner_;
  BrokerConfig cfg_;
  sched::DeferredScheduler scheduler_;
  PlanCache cache_;
  AdmissionController admission_;
  BatchDispatcher dispatcher_;
  partition::RemoteAllPartitioner all_remote_;
  const dataplane::BackpressureSource* backpressure_ = nullptr;
  /// Buckets with an exact solve in flight (stage-2 dedup): a burst of
  /// same-bucket misses triggers one solver run, not a storm. std::set
  /// for deterministic iteration (lint R2).
  std::set<PlanKey> resolving_;
  BrokerStats stats_;
  TwoStageStats twostage_;
  obs::TraceSink* trace_ = nullptr;
  Instruments m_;
};

}  // namespace ntco::broker
