#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

/// \file lint.hpp
/// `ntco-lint`: repo-specific determinism & layering static analysis.
///
/// The fleet engine promises byte-identical merged artifacts at any
/// `NTCO_THREADS`. That contract is enforced dynamically by tools/ci.sh
/// (artifact diffs), but a dynamic gate only covers the inputs CI happens to
/// run. This analyzer makes the contract statically checkable on every
/// source file:
///
///   R1  no nondeterminism sources (`std::random_device`, `rand`, wall
///       clocks, `getenv`, raw `<random>` engines) outside a small
///       sanctioned allowlist (rng.hpp, thread_pool.cpp, bench harness),
///   R2  no *iteration* over `std::unordered_map` / `std::unordered_set`
///       (range-for, or `.begin()` inside a `for` header) — declaration and
///       point lookup stay legal; sorted extraction (copying the container
///       out and sorting) stays legal,
///   R3  no threading primitives outside `src/fleet/`,
///   R4  module layering: every `#include <ntco/MOD/...>` edge must be a
///       forward edge of the declared module DAG (reachability over direct
///       deps); unknown modules and back-edges are rejected, and a cyclic
///       *declared* DAG is itself an error,
///   R5  no floating-point `+=` accumulation of values obtained from
///       unordered containers (`m[k]`, `m.at(k)`), whose visitation order
///       is not shard-ordered.
///
/// Diagnostics are `file:line: [Rn] message`. Inline suppression:
///
///   some_code();  // ntco-lint: allow(R2) reason why this is safe
///
/// The directive covers its own line and the next line, the reason is
/// mandatory (a missing reason is itself a `[sup]` diagnostic and the
/// suppression does not apply), and every honoured suppression is counted
/// in the report. A checked-in baseline (tools/lint_baseline.txt) lets
/// pre-existing debt fail closed only when it grows: baseline entries are
/// line-number-free fingerprints, so unrelated edits do not churn it.
///
/// The analyzer is token/regex-plus-context, not a real C++ front end: it
/// strips comments and string/char literals, then pattern-matches with
/// identifier-boundary context. See DESIGN.md "Static analysis &
/// determinism contract" for rule rationale and known heuristic gaps.

namespace ntco::lint {

/// Rule identifiers. `Sup` is the meta-rule for malformed suppressions.
enum class Rule : std::uint8_t { R1, R2, R3, R4, R5, Sup };

/// "R1".."R5", or "sup".
[[nodiscard]] const char* rule_name(Rule r);

struct Diagnostic {
  std::string file;  ///< path relative to Config::root, '/'-separated
  int line = 0;      ///< 1-based
  Rule rule = Rule::R1;
  std::string message;
  /// Line-number-free identity `file|rule|detail`, used by the baseline so
  /// unrelated edits (which shift line numbers) do not invalidate entries.
  std::string fingerprint;
};

/// One honoured inline `ntco-lint: allow(...)` directive.
struct Suppression {
  std::string file;
  int line = 0;
  std::string rules;   ///< as written, e.g. "R2" or "R2,R5"
  std::string reason;  ///< mandatory free text after the rule list
};

struct Config {
  /// Directory all scan roots and reported paths are relative to.
  std::string root = ".";
  /// Directories or single files (relative to `root`) to scan.
  std::vector<std::string> roots{"src", "bench", "tests", "examples"};
  /// Relative-path prefixes to skip (the lint's own violation fixtures).
  std::vector<std::string> exclude{"tests/lint_fixtures/"};
  /// R1 sanctioned files/dirs (relative-path prefixes): the Rng engine
  /// itself, the NTCO_THREADS env probe, and the bench harness (which
  /// times itself with steady_clock and reads NTCO_BENCH_OUT).
  std::vector<std::string> r1_allow{
      "src/common/include/ntco/common/rng.hpp",
      "src/fleet/src/thread_pool.cpp",
      "bench/",
  };
  /// R3 sanctioned prefixes: the only concurrent code in the repo.
  std::vector<std::string> r3_allow{"src/fleet/"};
  /// R4 declared module DAG: module -> direct dependencies. An include
  /// edge is legal iff its target is reachable from the includer.
  /// Files under bench/, tests/, examples/, tools/ map to the pseudo
  /// module "top", which may include everything.
  std::map<std::string, std::vector<std::string>> dag;
};

/// Config with the repo's declared DAG and allowlists, rooted at `root`.
[[nodiscard]] Config default_config(std::string root);

struct Report {
  std::vector<Diagnostic> diagnostics;  ///< unsuppressed findings
  std::vector<Suppression> suppressions;
  std::size_t files_scanned = 0;
};

/// Analyzes one file's `contents` as `rel_path` under `cfg`, appending to
/// `out`. Exposed so the fixture tests can drive single files. Throws
/// std::runtime_error if cfg.dag is cyclic.
void analyze_source(const Config& cfg, const std::string& rel_path,
                    const std::string& contents, Report& out);

/// Walks cfg.roots under cfg.root (deterministic path order) and analyzes
/// every C++ source file (.hpp/.cpp/.h/.cc/.hxx/.cxx).
[[nodiscard]] Report run(const Config& cfg);

/// Multiset of diagnostic fingerprints. Text format: one fingerprint per
/// line; blank lines and '#' comments ignored; duplicate lines absorb that
/// many matching diagnostics.
class Baseline {
 public:
  [[nodiscard]] static Baseline from_string(const std::string& text);
  [[nodiscard]] static Baseline from_file(const std::string& path);

  /// Diagnostics not absorbed by the baseline. Each baseline entry absorbs
  /// at most its multiplicity; anything beyond that is new debt.
  [[nodiscard]] std::vector<Diagnostic> filter_new(
      const std::vector<Diagnostic>& all) const;

  /// Serializes diagnostics as baseline text (sorted, with multiplicity).
  [[nodiscard]] static std::string to_text(const std::vector<Diagnostic>& all);

  [[nodiscard]] std::size_t size() const;

 private:
  std::map<std::string, int> counts_;
};

/// Machine-readable report: scanned/diagnostic/suppression counts, every
/// diagnostic (with its baseline status), and every suppression.
[[nodiscard]] std::string to_json(const Report& report,
                                  const std::vector<Diagnostic>& fresh);

}  // namespace ntco::lint
