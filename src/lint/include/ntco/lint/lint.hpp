#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

/// \file lint.hpp
/// `ntco-lint` v2: repo-specific determinism, layering, and hot-path static
/// analysis — a two-phase, cross-file analyzer.
///
/// **Phase 1** builds a per-file index: the stripped token stream (comments
/// and string/char literals blanked, raw strings with arbitrary delimiters
/// handled), the `ntco/` include edges, the `ntco::` symbols a header
/// declares and a file uses (brace/namespace tracking separates
/// namespace-scope declarations from locals), the string literals reaching
/// `obs` telemetry calls, hot-path region markers, suppression directives,
/// and the file-local rule findings. Phase-1 results are cacheable by
/// content hash (see `run` with a cache path), so warm full-tree runs stay
/// well under a second.
///
/// **Phase 2** runs the cross-file rules over the combined index and
/// applies suppressions uniformly:
///
///   R1  no nondeterminism sources (`std::random_device`, `rand`, wall
///       clocks, `getenv`, raw `<random>` engines) outside a small
///       sanctioned allowlist (rng.hpp, thread_pool.cpp, bench harness),
///   R2  no *iteration* over `std::unordered_map` / `std::unordered_set`
///       (range-for, or `.begin()` inside a `for` header) — declaration and
///       point lookup stay legal; sorted extraction stays legal,
///   R3  no threading primitives outside `src/fleet/`,
///   R4  module layering: every `#include <ntco/MOD/...>` edge must be a
///       forward edge of the declared module DAG (reachability over direct
///       deps); unknown modules and back-edges are rejected, and a cyclic
///       *declared* DAG is itself an error,
///   R5  no floating-point `+=` accumulation of values obtained from
///       unordered containers (`m[k]`, `m.at(k)`), whose visitation order
///       is not shard-ordered,
///   R6  no allocation on the serving hot path: inside regions bracketed by
///       `hotpath begin` / `hotpath end` directives (or files listed in
///       tools/lint_hotpath.txt) `new`, `make_shared`/`make_unique`,
///       `std::function` construction, and growth-prone container ops
///       (`push_back`, `insert`, `resize`, ...) are findings,
///   R7  telemetry-name contract: every string literal reaching
///       `obs::emit(...)` / `counter(...)` / `gauge(...)` / `summary(...)`
///       / `histogram(...)` / `trace_event(...)` under src/ must appear in
///       the central registry `src/obs/include/ntco/obs/names.hpp` with the
///       matching kind, and the registry must contain no dead or duplicate
///       names,
///   R8  include hygiene (IWYU-lite): an `ntco/` header include is stale if
///       none of the header's declared symbols are used in the including
///       file; a qualified use (`mod::Symbol`) whose unique declaring
///       header is not directly included is a missing include,
///   R9  kernel-handler SBO audit: lambdas passed to `schedule_at` /
///       `schedule_after` must fit the 48-byte `InlineFunction` buffer
///       (capture-list size heuristics) and must not copy-capture
///       allocating containers; `allow(R9)` is the escape hatch for
///       deliberate heap-fallback handlers.
///
/// Diagnostics are `file:line: [Rn] message`. Inline suppression:
///
///   some_code();  // ntco-lint: allow(R2) reason why this is safe
///
/// The directive covers its own line and the next line, the reason is
/// mandatory (a missing reason is itself a `[sup]` diagnostic and the
/// suppression does not apply), and every honoured suppression is counted
/// in the report. A suppression that silences nothing is *stale* and
/// reported separately (`Report::stale_suppressions`; `--fail-stale` in the
/// CLI turns it into a gate), so dead allow-comments cannot accumulate.
/// Hot-path regions use the same marker:
///
///   // ntco-lint: hotpath begin
///   ...allocation-free code...
///   // ntco-lint: hotpath end
///
/// A checked-in baseline (tools/lint_baseline.txt) lets pre-existing debt
/// fail closed only when it grows: baseline entries are line-number-free
/// fingerprints, so unrelated edits do not churn it.
///
/// The analyzer is token/regex-plus-context, not a real C++ front end: it
/// strips comments and string/char literals, then pattern-matches with
/// identifier-boundary context. See DESIGN.md "Static analysis &
/// determinism contract" for rule rationale and known heuristic gaps.

namespace ntco::lint {

/// Rule identifiers. `Sup` is the meta-rule for malformed suppressions and
/// unmatched hot-path markers.
enum class Rule : std::uint8_t { R1, R2, R3, R4, R5, R6, R7, R8, R9, Sup };

/// "R1".."R9", or "sup".
[[nodiscard]] const char* rule_name(Rule r);

struct Diagnostic {
  std::string file;  ///< path relative to Config::root, '/'-separated
  int line = 0;      ///< 1-based
  Rule rule = Rule::R1;
  std::string message;
  /// Line-number-free identity `file|rule|detail`, used by the baseline so
  /// unrelated edits (which shift line numbers) do not invalidate entries.
  std::string fingerprint;
};

/// One honoured inline `ntco-lint: allow(...)` directive.
struct Suppression {
  std::string file;
  int line = 0;
  std::string rules;   ///< as written, e.g. "R2" or "R2,R5"
  std::string reason;  ///< mandatory free text after the rule list
};

struct Config {
  /// Directory all scan roots and reported paths are relative to.
  std::string root = ".";
  /// Directories or single files (relative to `root`) to scan.
  std::vector<std::string> roots{"src", "bench", "tests", "examples"};
  /// Relative-path prefixes to skip (the lint's own violation fixtures).
  std::vector<std::string> exclude{"tests/lint_fixtures/"};
  /// R1 sanctioned files/dirs (relative-path prefixes): the Rng engine
  /// itself, the NTCO_THREADS env probe, and the bench harness (which
  /// times itself with steady_clock and reads NTCO_BENCH_OUT).
  std::vector<std::string> r1_allow{
      "src/common/include/ntco/common/rng.hpp",
      "src/fleet/src/thread_pool.cpp",
      "bench/",
  };
  /// R3 sanctioned prefixes: the only concurrent code in the repo.
  std::vector<std::string> r3_allow{"src/fleet/", "src/dataplane/"};
  /// R4 declared module DAG: module -> direct dependencies. An include
  /// edge is legal iff its target is reachable from the includer.
  /// Files under bench/, tests/, examples/, tools/ map to the pseudo
  /// module "top", which may include everything.
  std::map<std::string, std::vector<std::string>> dag;
  /// R6: relative-path prefixes whose *whole files* are hot-path regions.
  /// default_config() seeds this from tools/lint_hotpath.txt when present.
  std::vector<std::string> hotpath_files;
  /// R7: path (relative to root) of the telemetry-name registry. Missing
  /// file disables R7 (fixture trees carry their own registry).
  std::string names_registry = "src/obs/include/ntco/obs/names.hpp";
  /// R7/R8 apply to files under these prefixes (production sources only:
  /// tests and benches mint ad-hoc names and include convenience-first).
  std::vector<std::string> r7_scope{"src/"};
  std::vector<std::string> r8_scope{"src/"};
};

/// Config with the repo's declared DAG and allowlists, rooted at `root`.
/// Loads tools/lint_hotpath.txt under `root` into `hotpath_files` if the
/// file exists.
[[nodiscard]] Config default_config(std::string root);

struct Report {
  std::vector<Diagnostic> diagnostics;  ///< unsuppressed findings
  std::vector<Suppression> suppressions;
  /// Directives that silenced nothing this run: dead allow-comments whose
  /// rule no longer fires at their site.
  std::vector<Suppression> stale_suppressions;
  std::size_t files_scanned = 0;
  std::size_t cache_hits = 0;    ///< phase-1 indexes reused from the cache
  std::size_t cache_misses = 0;  ///< files (re)analyzed this run
};

/// Analyzes one file's `contents` as `rel_path` under `cfg`, appending to
/// `out`. Exposed so the fixture tests can drive single files; cross-file
/// rules degrade gracefully (R8 can only see this one file's declarations).
/// Throws std::runtime_error if cfg.dag is cyclic.
void analyze_source(const Config& cfg, const std::string& rel_path,
                    const std::string& contents, Report& out);

/// Walks cfg.roots under cfg.root (deterministic path order), indexes every
/// C++ source file (.hpp/.cpp/.h/.cc/.hxx/.cxx), and runs both phases.
/// With a non-empty `cache_path`, phase-1 indexes are reused for files
/// whose content hash (and the config hash) match the cache, and the cache
/// is rewritten after the run.
[[nodiscard]] Report run(const Config& cfg, const std::string& cache_path = "");

/// Multiset of diagnostic fingerprints. Text format: one fingerprint per
/// line; blank lines and '#' comments ignored; duplicate lines absorb that
/// many matching diagnostics.
class Baseline {
 public:
  [[nodiscard]] static Baseline from_string(const std::string& text);
  [[nodiscard]] static Baseline from_file(const std::string& path);

  /// Diagnostics not absorbed by the baseline. Each baseline entry absorbs
  /// at most its multiplicity; anything beyond that is new debt.
  [[nodiscard]] std::vector<Diagnostic> filter_new(
      const std::vector<Diagnostic>& all) const;

  /// Serializes diagnostics as baseline text (sorted, with multiplicity).
  [[nodiscard]] static std::string to_text(const std::vector<Diagnostic>& all);

  [[nodiscard]] std::size_t size() const;

 private:
  std::map<std::string, int> counts_;
};

/// Machine-readable report: scanned/diagnostic/suppression counts, every
/// diagnostic (with its baseline status), every suppression, and the stale
/// suppressions.
[[nodiscard]] std::string to_json(const Report& report,
                                  const std::vector<Diagnostic>& fresh);

/// SARIF 2.1.0 report (one run, rules R1-R9 + sup). Fresh diagnostics are
/// level "error", baselined ones "note" — CI uploaders can render both.
[[nodiscard]] std::string to_sarif(const Report& report,
                                   const std::vector<Diagnostic>& fresh);

// ---------------------------------------------------------------------------
// Telemetry-name registry (R7).

/// One row of src/obs/include/ntco/obs/names.hpp:
///   NTCO_OBS_NAME(kIdent, kind, "dotted.name", "field, field")
struct ObsNameEntry {
  std::string ident;   ///< C++ constant name, e.g. "kSimEventFired"
  std::string kind;    ///< trace | counter | gauge | summary | histogram
  std::string name;    ///< the wire name, e.g. "sim.event.fired"
  std::string fields;  ///< documented fields / unit note (may be empty)
  int line = 0;        ///< 1-based line of the entry in the registry
};

/// Parses the registry. Returns an empty vector if the file is missing;
/// malformed rows are skipped (R7 reports duplicates/dead names — syntax
/// errors in the registry surface as dead call-site names).
[[nodiscard]] std::vector<ObsNameEntry> load_names_registry(
    const std::string& path);

/// Renders the registry as the two markdown tables embedded in DESIGN.md
/// ("Trace events" with fields, then metrics grouped by kind) — the tables
/// are generated from the registry, never hand-maintained.
[[nodiscard]] std::string names_markdown(
    const std::vector<ObsNameEntry>& entries);

}  // namespace ntco::lint
