#include "ntco/lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

namespace ntco::lint {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Small string helpers.

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

bool starts_with_any(const std::string& path,
                     const std::vector<std::string>& prefixes) {
  for (const auto& p : prefixes)
    if (path.rfind(p, 0) == 0) return true;
  return false;
}

std::uint64_t fnv1a(const std::string& s, std::uint64_t h = 14695981039346656037ULL) {
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

// ---------------------------------------------------------------------------
// Pass 1: strip comments and string/char literals.
//
// The token rules must not fire on prose ("std::thread is banned here") or
// on pattern strings, so everything inside comments and literals is blanked
// to spaces before matching. Line structure and column positions are
// preserved so diagnostics can report 1-based line numbers and the obs-name
// extractor can read literals back out of the raw line at a known column.
// Handles //, /*...*/, "...", '...', and raw strings with arbitrary
// delimiters (R"(...)", R"x(...)x", R"ntco(...)ntco").

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else if (c != '\r') {
      cur.push_back(c);
    }
  }
  lines.push_back(cur);
  return lines;
}

std::vector<std::string> strip_code(const std::vector<std::string>& raw) {
  enum class St { Code, Block, Str, Chr, Raw };
  St st = St::Code;
  std::string raw_close;  // ")delim\"" — the sequence ending the raw string
  std::vector<std::string> out;
  out.reserve(raw.size());
  for (const std::string& line : raw) {
    std::string s(line.size(), ' ');
    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      const char n = i + 1 < line.size() ? line[i + 1] : '\0';
      switch (st) {
        case St::Code:
          if (c == '/' && n == '/') {
            i = line.size();  // rest of line is comment
          } else if (c == '/' && n == '*') {
            st = St::Block;
            ++i;
          } else if (c == 'R' && n == '"' &&
                     (i == 0 || !is_ident(line[i - 1]))) {
            // R"delim( — the delimiter is 0..16 chars, none of which may be
            // a space, backslash, or paren (per the grammar).
            std::size_t j = i + 2;
            std::string delim;
            bool valid = true;
            while (j < line.size() && line[j] != '(') {
              const char d = line[j];
              if (delim.size() >= 16 || d == ')' || d == '\\' || d == '"' ||
                  std::isspace(static_cast<unsigned char>(d)) != 0) {
                valid = false;
                break;
              }
              delim.push_back(d);
              ++j;
            }
            if (valid && j < line.size() && line[j] == '(') {
              st = St::Raw;
              raw_close = ")" + delim + "\"";
              i = j;  // loop's ++i steps past '('
            } else {
              s[i] = c;  // not actually a raw-string opener
            }
          } else if (c == '"') {
            st = St::Str;
          } else if (c == '\'') {
            // Digit separator (16'667, 0xDEAD'BEEF): a quote between two
            // hex digits is not a char literal — except the u8'x' prefix,
            // where the '8' before the quote belongs to `u8`.
            const auto hexish = [](char d) {
              return std::isdigit(static_cast<unsigned char>(d)) != 0 ||
                     (d >= 'a' && d <= 'f') || (d >= 'A' && d <= 'F');
            };
            const bool u8_prefix = i >= 2 && line[i - 1] == '8' &&
                                   line[i - 2] == 'u' &&
                                   (i < 3 || !is_ident(line[i - 3]));
            if (i > 0 && hexish(line[i - 1]) && hexish(n) && !u8_prefix) {
              s[i] = c;  // separator: keep it as code
            } else {
              st = St::Chr;
            }
          } else {
            s[i] = c;
          }
          break;
        case St::Block:
          if (c == '*' && n == '/') {
            st = St::Code;
            ++i;
          }
          break;
        case St::Str:
          if (c == '\\') {
            ++i;
          } else if (c == '"') {
            st = St::Code;
          }
          break;
        case St::Chr:
          if (c == '\\') {
            ++i;
          } else if (c == '\'') {
            st = St::Code;
          }
          break;
        case St::Raw:
          if (line.compare(i, raw_close.size(), raw_close) == 0) {
            st = St::Code;
            i += raw_close.size() - 1;
          }
          break;
      }
    }
    // Unterminated " or ' at end of line: treat as closed (not valid C++
    // anyway; keeps the stripper from eating the rest of the file). Raw
    // strings legitimately span lines, so St::Raw persists.
    if (st == St::Str || st == St::Chr) st = St::Code;
    out.push_back(std::move(s));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Token matching with identifier-boundary context.

enum class Kind {
  Call,    // identifier-bounded, must be followed by '(' — e.g. time(
  Word,    // identifier-bounded on both sides — e.g. steady_clock
  Prefix,  // identifier-bounded on the left only — e.g. std::atomic<...>
};

struct Token {
  const char* text;
  Kind kind;
};

// Leading boundary: not part of a longer identifier and not a member
// access (`x.time(...)`, `p->time(...)`). A `::` qualifier is *not* a
// boundary-breaker, so `std::getenv(` matches the `getenv` call token.
bool left_ok(const std::string& s, std::size_t pos) {
  if (pos == 0) return true;
  const char b = s[pos - 1];
  return !is_ident(b) && b != '.' && b != '>';
}

bool match_token(const std::string& s, const Token& t, std::size_t* at) {
  const std::string pat(t.text);
  std::size_t pos = 0;
  while ((pos = s.find(pat, pos)) != std::string::npos) {
    const std::size_t end = pos + pat.size();
    const bool right_word = end < s.size() && is_ident(s[end]);
    bool ok = left_ok(s, pos);
    if (ok) {
      switch (t.kind) {
        case Kind::Word:
          ok = !right_word;
          break;
        case Kind::Prefix:
          break;
        case Kind::Call: {
          ok = !right_word;
          if (ok) {
            std::size_t j = end;
            while (j < s.size() &&
                   std::isspace(static_cast<unsigned char>(s[j])) != 0)
              ++j;
            ok = j < s.size() && s[j] == '(';
          }
          break;
        }
      }
    }
    if (ok) {
      *at = pos;
      return true;
    }
    pos = end;
  }
  return false;
}

// Like Call matching but *member access is allowed* on the left — used for
// telemetry APIs (`registry.counter(`) and kernel entry points
// (`sim.schedule_at(`), where the receiver is the point.
bool match_member_call(const std::string& s, const std::string& pat,
                       std::size_t from, std::size_t* at) {
  std::size_t pos = from;
  while ((pos = s.find(pat, pos)) != std::string::npos) {
    const std::size_t end = pos + pat.size();
    const bool left = pos == 0 || !is_ident(s[pos - 1]);
    bool ok = left && !(end < s.size() && is_ident(s[end]));
    if (ok) {
      std::size_t j = end;
      while (j < s.size() &&
             std::isspace(static_cast<unsigned char>(s[j])) != 0)
        ++j;
      ok = j < s.size() && s[j] == '(';
      if (ok) {
        *at = pos;
        return true;
      }
    }
    pos = end;
  }
  return false;
}

// R1: nondeterminism sources. Wall clocks, process environment, and raw
// <random> machinery; everything stochastic must flow through ntco::Rng and
// everything temporal through sim::Simulator::now().
const Token kR1Tokens[] = {
    {"random_device", Kind::Word},   {"rand", Kind::Call},
    {"srand", Kind::Call},           {"time", Kind::Call},
    {"clock", Kind::Call},           {"getenv", Kind::Call},
    {"gettimeofday", Kind::Call},    {"localtime", Kind::Call},
    {"gmtime", Kind::Call},          {"system_clock", Kind::Word},
    {"steady_clock", Kind::Word},    {"high_resolution_clock", Kind::Word},
    {"mt19937", Kind::Prefix},       {"minstd_rand", Kind::Prefix},
    {"default_random_engine", Kind::Word},
};

// R3: threading primitives; the fleet layer owns all concurrency.
const Token kR3Tokens[] = {
    {"std::thread", Kind::Word},     {"std::jthread", Kind::Word},
    {"std::mutex", Kind::Word},      {"std::shared_mutex", Kind::Word},
    {"std::timed_mutex", Kind::Word},
    {"std::recursive_mutex", Kind::Word},
    {"std::condition_variable", Kind::Prefix},
    {"std::atomic", Kind::Prefix},   {"std::lock_guard", Kind::Word},
    {"std::unique_lock", Kind::Word},
    {"std::scoped_lock", Kind::Word},
    {"std::this_thread", Kind::Word},
    {"std::async", Kind::Word},      {"std::future", Kind::Word},
    {"std::promise", Kind::Word},    {"std::barrier", Kind::Word},
    {"std::latch", Kind::Word},
    {"std::counting_semaphore", Kind::Prefix},
};

// R6: direct allocation calls banned inside hot-path regions.
const Token kR6Alloc[] = {
    {"new", Kind::Word},
    {"make_shared", Kind::Prefix},
    {"make_unique", Kind::Prefix},
    {"std::function", Kind::Word},
};

// R6: growth-prone container member ops (matched as `.op(` / `->op(`).
const char* kR6Growth[] = {
    "push_back", "emplace_back", "push_front", "emplace_front",
    "emplace",   "insert",       "resize",     "reserve",
    "append",
};

// ---------------------------------------------------------------------------
// R2/R5 support: names of variables declared with an unordered container
// type anywhere in the file (declarations, members, parameters).

std::set<std::string> unordered_vars(const std::vector<std::string>& code) {
  std::set<std::string> vars;
  // Join for decl scanning only; diagnostics never come from this pass.
  std::string all;
  for (const auto& l : code) {
    all += l;
    all += '\n';
  }
  const std::string pats[] = {"unordered_map", "unordered_set",
                              "unordered_multimap", "unordered_multiset"};
  for (const auto& pat : pats) {
    std::size_t pos = 0;
    while ((pos = all.find(pat, pos)) != std::string::npos) {
      std::size_t i = pos + pat.size();
      pos = i;
      while (i < all.size() &&
             std::isspace(static_cast<unsigned char>(all[i])) != 0)
        ++i;
      if (i >= all.size() || all[i] != '<') continue;  // include line etc.
      int depth = 0;
      for (; i < all.size(); ++i) {
        if (all[i] == '<') ++depth;
        if (all[i] == '>' && --depth == 0) break;
      }
      if (i >= all.size()) continue;
      ++i;  // past '>'
      // Skip refs/pointers/cv and whitespace before the declared name.
      for (;;) {
        while (i < all.size() &&
               (std::isspace(static_cast<unsigned char>(all[i])) != 0 ||
                all[i] == '&' || all[i] == '*'))
          ++i;
        if (all.compare(i, 5, "const") == 0 &&
            (i + 5 >= all.size() || !is_ident(all[i + 5]))) {
          i += 5;
          continue;
        }
        break;
      }
      std::string name;
      while (i < all.size() && is_ident(all[i])) name.push_back(all[i++]);
      if (!name.empty() &&
          std::isdigit(static_cast<unsigned char>(name[0])) == 0)
        vars.insert(name);
    }
  }
  return vars;
}

// The trailing identifier of a range-for's range expression: `m`,
// `obj.members` -> "members", `(*p).idx_` -> "idx_".
std::string trailing_ident(const std::string& expr) {
  std::string e = trim(expr);
  while (!e.empty() && (e.back() == ')' || e.back() == ' ')) e.pop_back();
  std::size_t i = e.size();
  while (i > 0 && is_ident(e[i - 1])) --i;
  return e.substr(i);
}

// ---------------------------------------------------------------------------
// R9 support: sizes of common capture types (x86-64 libstdc++ layouts) and
// whether copying one allocates.

struct TypeInfo {
  int size;
  bool alloc_on_copy;
};

const std::pair<const char*, TypeInfo> kR9Types[] = {
    {"std::string", {32, true}},     {"std::vector", {24, true}},
    {"std::function", {32, true}},   {"std::deque", {80, true}},
    {"std::map", {48, true}},        {"std::set", {48, true}},
    {"std::multiset", {48, true}},   {"std::multimap", {48, true}},
    {"std::shared_ptr", {16, false}}, {"std::weak_ptr", {16, false}},
    {"std::unique_ptr", {8, false}},
};

// Map of variable name -> TypeInfo for every declaration in the file whose
// type prefix is in kR9Types. Heuristic: find the type token, skip balanced
// template args, skip cv/ref/ptr, take the identifier.
std::map<std::string, TypeInfo> r9_var_types(
    const std::vector<std::string>& code) {
  std::map<std::string, TypeInfo> vars;
  std::string all;
  for (const auto& l : code) {
    all += l;
    all += '\n';
  }
  for (const auto& [pat_c, info] : kR9Types) {
    const std::string pat(pat_c);
    std::size_t pos = 0;
    while ((pos = all.find(pat, pos)) != std::string::npos) {
      std::size_t i = pos + pat.size();
      pos = i;
      if (i < all.size() && is_ident(all[i])) continue;  // std::stringstream
      if (i < all.size() && all[i] == '<') {
        int depth = 0;
        for (; i < all.size(); ++i) {
          if (all[i] == '<') ++depth;
          if (all[i] == '>' && --depth == 0) break;
        }
        if (i >= all.size()) continue;
        ++i;
      }
      for (;;) {
        while (i < all.size() &&
               (std::isspace(static_cast<unsigned char>(all[i])) != 0 ||
                all[i] == '&' || all[i] == '*'))
          ++i;
        if (all.compare(i, 5, "const") == 0 &&
            (i + 5 >= all.size() || !is_ident(all[i + 5]))) {
          i += 5;
          continue;
        }
        break;
      }
      std::string name;
      while (i < all.size() && is_ident(all[i])) name.push_back(all[i++]);
      if (!name.empty() &&
          std::isdigit(static_cast<unsigned char>(name[0])) == 0)
        vars.emplace(name, info);
    }
  }
  return vars;
}

// ---------------------------------------------------------------------------
// R4/R8: module layering and include edges.

std::string module_of(const std::string& rel_path) {
  if (rel_path.rfind("src/", 0) == 0) {
    const std::size_t end = rel_path.find('/', 4);
    if (end != std::string::npos) return rel_path.substr(4, end - 4);
  }
  return "top";  // bench/, tests/, examples/, tools/ sit above every module
}

// Reachability closure of the declared DAG; throws on a declared cycle.
std::map<std::string, std::set<std::string>> dag_closure(
    const std::map<std::string, std::vector<std::string>>& dag) {
  std::map<std::string, std::set<std::string>> closure;
  std::map<std::string, int> state;  // 0 new, 1 visiting, 2 done
  struct Walk {
    const std::map<std::string, std::vector<std::string>>& dag;
    std::map<std::string, std::set<std::string>>& closure;
    std::map<std::string, int>& state;
    void operator()(const std::string& m) {
      if (state[m] == 2) return;
      if (state[m] == 1)
        throw std::runtime_error("declared module DAG has a cycle through '" +
                                 m + "'");
      state[m] = 1;
      auto it = dag.find(m);
      if (it != dag.end()) {
        for (const auto& dep : it->second) {
          if (dag.find(dep) == dag.end())
            throw std::runtime_error("declared DAG names unknown module '" +
                                     dep + "' (dep of '" + m + "')");
          (*this)(dep);
          closure[m].insert(dep);
          const auto& sub = closure[dep];
          closure[m].insert(sub.begin(), sub.end());
        }
      }
      state[m] = 2;
    }
  };
  Walk walk{dag, closure, state};
  for (const auto& [m, deps] : dag) walk(m);
  return closure;
}

// Full ntco include target on a raw line ("ntco/sim/simulator.hpp"), or ""
// — raw because the include path is a string/angle literal and the stripper
// blanks both.
std::string ntco_include_path(const std::string& raw) {
  // Only a real preprocessor directive counts: '#' must be the first
  // non-space character, so prose like `every #include <ntco/...> edge`
  // in a doc comment does not register an edge.
  std::size_t first = 0;
  while (first < raw.size() &&
         std::isspace(static_cast<unsigned char>(raw[first])) != 0)
    ++first;
  if (first >= raw.size() || raw[first] != '#') return "";
  std::size_t pos = raw.find("#include", first);
  if (pos != first) return "";
  pos = raw.find("ntco/", pos);
  if (pos == std::string::npos) return "";
  const std::size_t end = raw.find_first_of(">\"", pos);
  if (end == std::string::npos) return "";
  const std::string path = raw.substr(pos, end - pos);
  return path.find('/', 5) == std::string::npos ? "" : path;
}

// ---------------------------------------------------------------------------
// Directives: allow(...) suppressions and hotpath region markers.

struct Finding {
  int line;
  Rule rule;
  std::string message;
  std::string detail;  // fingerprint tail
};

struct Directive {
  int line = 0;  // 1-based line it sits on
  std::set<Rule> rules;
  std::string rules_text;
  std::string reason;
};

struct HotMark {
  int line = 0;
  bool begin = false;
};

Rule parse_rule(const std::string& r, bool* ok) {
  *ok = true;
  if (r == "R1") return Rule::R1;
  if (r == "R2") return Rule::R2;
  if (r == "R3") return Rule::R3;
  if (r == "R4") return Rule::R4;
  if (r == "R5") return Rule::R5;
  if (r == "R6") return Rule::R6;
  if (r == "R7") return Rule::R7;
  if (r == "R8") return Rule::R8;
  if (r == "R9") return Rule::R9;
  *ok = false;
  return Rule::Sup;
}

// The marker is assembled at runtime so this file's own sources (which the
// lint scans) never contain the directive as a contiguous literal.
const std::string& marker() {
  static const std::string m = std::string("ntco-") + "lint:";
  return m;
}

void parse_directives(const std::vector<std::string>& raw,
                      std::vector<Directive>* dirs,
                      std::vector<HotMark>* marks,
                      std::vector<Finding>* sup) {
  for (std::size_t li = 0; li < raw.size(); ++li) {
    const std::string& line = raw[li];
    std::size_t pos = line.find(marker());
    if (pos == std::string::npos) continue;
    // Directives live in plain `//` comments; a marker inside a `///` doc
    // comment is documentation (like the syntax example in lint.hpp), not
    // an active suppression.
    const std::size_t doc = line.find("///");
    if (doc != std::string::npos && doc < pos) continue;
    pos += marker().size();
    while (pos < line.size() &&
           std::isspace(static_cast<unsigned char>(line[pos])) != 0)
      ++pos;
    const int lineno = static_cast<int>(li + 1);
    const std::string hot_kw = "hotpath";
    if (line.compare(pos, hot_kw.size(), hot_kw) == 0 &&
        (pos + hot_kw.size() >= line.size() ||
         !is_ident(line[pos + hot_kw.size()]))) {
      const std::string rest = trim(line.substr(pos + hot_kw.size()));
      if (rest == "begin" || rest == "end") {
        marks->push_back({lineno, rest == "begin"});
      } else {
        sup->push_back({lineno, Rule::Sup,
                        "malformed hotpath marker '" + rest +
                            "' — expected 'begin' or 'end'",
                        "hotpath-bad"});
      }
      continue;
    }
    const std::string allow_kw = "allow(";
    if (line.compare(pos, allow_kw.size(), allow_kw) != 0) continue;
    pos += allow_kw.size();
    const std::size_t close = line.find(')', pos);
    if (close == std::string::npos) continue;
    Directive d;
    d.line = lineno;
    d.rules_text = line.substr(pos, close - pos);
    std::stringstream ss(d.rules_text);
    std::string item;
    bool all_ok = !d.rules_text.empty();
    while (std::getline(ss, item, ',')) {
      bool ok = false;
      const Rule r = parse_rule(trim(item), &ok);
      if (ok)
        d.rules.insert(r);
      else
        all_ok = false;
    }
    d.reason = trim(line.substr(close + 1));
    if (!all_ok || d.rules.empty()) {
      sup->push_back({lineno, Rule::Sup,
                      "malformed suppression: unknown rule list '" +
                          d.rules_text + "'",
                      "bad-rules"});
      continue;
    }
    if (d.reason.empty()) {
      // Fail closed: a reasonless allow() is a diagnostic, not a licence.
      sup->push_back({lineno, Rule::Sup,
                      "suppression for (" + d.rules_text +
                          ") is missing its mandatory reason",
                      d.rules_text});
      continue;
    }
    dirs->push_back(std::move(d));
  }
}

// ---------------------------------------------------------------------------
// The per-file index: everything phase 2 needs, cheap to cache.

struct IncludeEdge {
  int line = 0;
  std::string path;  // "ntco/MOD/name.hpp"
};

struct QualUse {
  std::string ns;   // left of '::', e.g. "sim"
  std::string sym;  // right of '::', e.g. "Simulator"
  int line = 0;     // first use
};

struct ObsUse {
  int line = 0;
  std::string api;   // emit | trace_event | counter | gauge | ...
  std::string name;  // the literal, e.g. "sim.event.fired"
};

struct FileIndex {
  std::string rel_path;
  std::string module;
  std::uint64_t hash = 0;
  std::vector<Finding> local;  // R1 R2 R3 R5 R6 R9 + Sup findings
  std::vector<Directive> dirs;
  std::vector<HotMark> marks;  // kept for cache round-tripping only
  std::vector<IncludeEdge> includes;
  std::vector<std::string> declared;  // namespace-scope symbols (headers)
  std::vector<std::string> used;      // sorted unique identifiers used
  std::vector<QualUse> qualified;     // unique (ns, sym) uses
  std::vector<ObsUse> obs_uses;
};

// ---------------------------------------------------------------------------
// R8 support: namespace-scope symbols a header declares.
//
// Brace tracking distinguishes namespace braces ('n') from everything else
// ('b'); declarations are only collected while every open brace is a
// namespace. This is a heuristic, not a parser: over-collection only
// weakens stale-include detection (safe direction), and headers whose
// declarations we cannot see at all (empty set) are skipped by R8 entirely.

bool is_keyword_name(const std::string& n) {
  static const std::set<std::string> kw{
      "if",       "for",      "while",    "switch",   "return",
      "sizeof",   "alignof",  "decltype", "noexcept", "operator",
      "throw",    "catch",    "static_assert",        "defined",
      "new",      "delete",   "co_await", "requires", "alignas",
  };
  return kw.count(n) != 0;
}

// First identifier at or after `pos`, skipping [[attributes]].
std::string ident_after(const std::string& s, std::size_t pos) {
  while (pos < s.size()) {
    if (s.compare(pos, 2, "[[") == 0) {
      const std::size_t close = s.find("]]", pos);
      if (close == std::string::npos) return "";
      pos = close + 2;
      continue;
    }
    if (is_ident(s[pos]) &&
        std::isdigit(static_cast<unsigned char>(s[pos])) == 0)
      break;
    ++pos;
  }
  std::string name;
  while (pos < s.size() && is_ident(s[pos])) name.push_back(s[pos++]);
  return name;
}

void collect_decls_from_stmt(const std::string& stmt,
                             std::set<std::string>* out) {
  const std::string t = trim(stmt);
  if (t.empty() || t[0] == '#') return;

  // using X = ...;  /  using ns::X;  (never `using namespace ...`)
  if (t.rfind("using", 0) == 0 && (t.size() == 5 || !is_ident(t[5]))) {
    const std::string rest = trim(t.substr(5));
    if (rest.rfind("namespace", 0) == 0) return;
    const std::size_t eq = rest.find('=');
    std::string name;
    if (eq != std::string::npos) {
      name = trailing_ident(rest.substr(0, eq));
    } else {
      name = trailing_ident(rest);
    }
    if (!name.empty() && !is_keyword_name(name)) out->insert(name);
    return;
  }

  // class X / struct X / enum [class] X — skip template parameter uses
  // (`template <class T>`), where the keyword follows '<' or ','.
  for (const char* kw : {"class", "struct", "enum"}) {
    const std::string pat(kw);
    std::size_t pos = 0;
    while ((pos = t.find(pat, pos)) != std::string::npos) {
      const std::size_t end = pos + pat.size();
      const bool bounded =
          (pos == 0 || !is_ident(t[pos - 1])) &&
          (end >= t.size() || !is_ident(t[end]));
      std::size_t prev = pos;
      while (prev > 0 &&
             std::isspace(static_cast<unsigned char>(t[prev - 1])) != 0)
        --prev;
      const bool tmpl_param =
          prev > 0 && (t[prev - 1] == '<' || t[prev - 1] == ',');
      pos = end;
      if (!bounded || tmpl_param) continue;
      std::string name = ident_after(t, end);
      if (name == "class") name = ident_after(t, t.find("class", end) + 5);
      if (!name.empty() && name != "final" && !is_keyword_name(name))
        out->insert(name);
      break;
    }
  }

  // Free function: last identifier before the first '(' whose previous
  // non-space char closes a return type (identifier char, '>', '&', '*').
  const std::size_t paren = t.find('(');
  const std::size_t eq_top = t.find('=');
  if (paren != std::string::npos && paren > 0 &&
      (eq_top == std::string::npos || paren < eq_top)) {
    std::size_t e = paren;
    while (e > 0 && std::isspace(static_cast<unsigned char>(t[e - 1])) != 0)
      --e;
    std::size_t b = e;
    while (b > 0 && is_ident(t[b - 1])) --b;
    if (b < e) {
      std::size_t prev = b;
      while (prev > 0 &&
             std::isspace(static_cast<unsigned char>(t[prev - 1])) != 0)
        --prev;
      const bool typed_before =
          prev > 0 && (is_ident(t[prev - 1]) || t[prev - 1] == '>' ||
                       t[prev - 1] == '&' || t[prev - 1] == '*');
      const std::string name = t.substr(b, e - b);
      if (typed_before && !is_keyword_name(name) &&
          std::isdigit(static_cast<unsigned char>(name[0])) == 0)
        out->insert(name);
    }
    return;
  }

  // Namespace-scope constant: `inline constexpr int kFoo = ...`.
  if (eq_top != std::string::npos && eq_top > 0) {
    const std::string name = trailing_ident(t.substr(0, eq_top));
    if (!name.empty() && !is_keyword_name(name) &&
        std::isdigit(static_cast<unsigned char>(name[0])) == 0 &&
        t.find(' ') < eq_top)  // needs a type before the name
      out->insert(name);
  }
}

std::vector<std::string> declared_symbols(
    const std::vector<std::string>& raw,
    const std::vector<std::string>& code) {
  std::set<std::string> out;
  // Macros come from raw lines (the stripper keeps directives intact).
  for (const std::string& line : raw) {
    const std::string t = trim(line);
    if (t.rfind("#define", 0) != 0) continue;
    std::string name;
    std::size_t i = 7;
    while (i < t.size() &&
           std::isspace(static_cast<unsigned char>(t[i])) != 0)
      ++i;
    while (i < t.size() && is_ident(t[i])) name.push_back(t[i++]);
    if (!name.empty()) out.insert(name);
  }
  // Statement walk with namespace-aware brace tracking.
  std::string stack;  // 'n' = namespace brace, 'b' = anything else
  std::string stmt;
  int angle = 0;  // template-argument depth; ';' inside <> never happens
  int paren = 0;
  for (const std::string& line : code) {
    for (char c : line) {
      if (c == '<') ++angle;
      if (c == '>' && angle > 0) --angle;
      if (c == '(') ++paren;
      if (c == ')' && paren > 0) --paren;
      if (c == '{' && paren == 0) {
        bool ns = false;
        std::size_t np = stmt.find("namespace");
        while (np != std::string::npos) {
          const std::size_t ne = np + 9;
          if ((np == 0 || !is_ident(stmt[np - 1])) &&
              (ne >= stmt.size() || !is_ident(stmt[ne]))) {
            ns = true;
            break;
          }
          np = stmt.find("namespace", np + 1);
        }
        if (stack.find('b') == std::string::npos)
          collect_decls_from_stmt(stmt, &out);
        stack.push_back(ns ? 'n' : 'b');
        stmt.clear();
      } else if (c == '}' && paren == 0) {
        if (!stack.empty()) stack.pop_back();
        stmt.clear();
      } else if (c == ';' && paren == 0) {
        if (stack.find('b') == std::string::npos)
          collect_decls_from_stmt(stmt, &out);
        stmt.clear();
      } else {
        stmt.push_back(c);
      }
    }
    stmt.push_back(' ');
  }
  return {out.begin(), out.end()};
}

// All identifiers used in the stripped code, excluding #include lines
// (whose ntco/ paths would otherwise count every module name as "used").
std::vector<std::string> used_idents(const std::vector<std::string>& raw,
                                     const std::vector<std::string>& code) {
  std::set<std::string> out;
  for (std::size_t li = 0; li < code.size(); ++li) {
    if (trim(raw[li]).rfind("#include", 0) == 0) continue;
    const std::string& s = code[li];
    std::size_t i = 0;
    while (i < s.size()) {
      if (!is_ident(s[i])) {
        ++i;
        continue;
      }
      std::size_t b = i;
      while (i < s.size() && is_ident(s[i])) ++i;
      if (std::isdigit(static_cast<unsigned char>(s[b])) == 0)
        out.insert(s.substr(b, i - b));
    }
  }
  return {out.begin(), out.end()};
}

// Unique (ns, sym) pairs from `ns::sym` uses in the stripped code.
std::vector<QualUse> qualified_uses(const std::vector<std::string>& code) {
  std::map<std::pair<std::string, std::string>, int> firsts;
  for (std::size_t li = 0; li < code.size(); ++li) {
    const std::string& s = code[li];
    std::size_t pos = 0;
    while ((pos = s.find("::", pos)) != std::string::npos) {
      std::size_t lb = pos;
      while (lb > 0 && is_ident(s[lb - 1])) --lb;
      std::size_t re = pos + 2;
      std::size_t rb = re;
      while (re < s.size() && is_ident(s[re])) ++re;
      const std::string ns = s.substr(lb, pos - lb);
      const std::string sym = s.substr(rb, re - rb);
      pos += 2;
      if (ns.empty() || sym.empty()) continue;
      if (std::isdigit(static_cast<unsigned char>(ns[0])) != 0) continue;
      firsts.emplace(std::make_pair(ns, sym), static_cast<int>(li + 1));
    }
  }
  std::vector<QualUse> out;
  out.reserve(firsts.size());
  for (const auto& [key, line] : firsts)
    out.push_back({key.first, key.second, line});
  return out;
}

// Telemetry call sites: api token followed by '(', first string literal in
// the next couple of raw lines (the stripper preserves columns, so the raw
// text at the same offset is the literal).
const char* kObsApis[] = {"emit",  "trace_event", "counter",
                          "gauge", "summary",     "histogram"};

std::vector<ObsUse> obs_call_sites(const std::vector<std::string>& raw,
                                   const std::vector<std::string>& code) {
  std::vector<ObsUse> out;
  for (std::size_t li = 0; li < code.size(); ++li) {
    const std::string& s = code[li];
    for (const char* api : kObsApis) {
      std::size_t pos = 0, at = 0;
      while (match_member_call(s, api, pos, &at)) {
        pos = at + std::strlen(api);
        // Find the opening paren (match_member_call guarantees one).
        std::size_t open = s.find('(', at);
        // First '"' in the raw text from the paren, looking ahead at most
        // two more lines; stop when the call's closing paren is reached in
        // the stripped code (depth persists across lines).
        std::string name;
        bool found = false;
        bool closed = false;
        int depth = 1;
        std::size_t col = open + 1;
        for (std::size_t lj = li;
             lj < code.size() && lj < li + 3 && !found && !closed; ++lj) {
          const std::string& rawl = raw[lj];
          const std::string& codel = code[lj];
          for (std::size_t k = col; k < rawl.size(); ++k) {
            if (k < codel.size()) {
              if (codel[k] == '(') ++depth;
              if (codel[k] == ')' && --depth == 0) {
                closed = true;  // call ended with no literal
                break;
              }
            }
            if (rawl[k] == '"') {
              const std::size_t close = rawl.find('"', k + 1);
              if (close != std::string::npos) {
                name = rawl.substr(k + 1, close - k - 1);
                found = true;
              }
              break;
            }
          }
          col = 0;
        }
        if (found && !name.empty())
          out.push_back({static_cast<int>(li + 1), api, name});
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// R9: capture-list audit of kernel handler lambdas.

void audit_handlers(const std::vector<std::string>& code,
                    const std::map<std::string, TypeInfo>& vars,
                    std::vector<Finding>* findings) {
  constexpr int kSbo = 48;  // ntco::InlineFunction<void(), 48>
  for (std::size_t li = 0; li < code.size(); ++li) {
    const std::string& s = code[li];
    for (const char* entry : {"schedule_at", "schedule_after"}) {
      std::size_t pos = 0, at = 0;
      while (match_member_call(s, entry, pos, &at)) {
        pos = at + std::strlen(entry);
        const std::size_t open = s.find('(', at);
        // Walk the call's argument text (joined across up to 12 lines)
        // looking for a lambda introducer: '[' at call depth whose previous
        // non-space char is '(' or ',' (rules out indexing and [[attrs]]).
        std::string w;
        std::vector<int> wline;
        for (std::size_t lj = li; lj < code.size() && lj < li + 12; ++lj) {
          for (char c : code[lj]) {
            w.push_back(c);
            wline.push_back(static_cast<int>(lj + 1));
          }
          w.push_back('\n');
          wline.push_back(static_cast<int>(lj + 1));
        }
        int depth = 0;
        std::size_t cap_b = std::string::npos;
        char prev_sig = '\0';
        for (std::size_t k = open; k < w.size(); ++k) {
          const char c = w[k];
          if (c == '(') ++depth;
          if (c == ')' && --depth == 0) break;
          if (c == '[' && depth >= 1 && k + 1 < w.size() && w[k + 1] != '[' &&
              (prev_sig == '(' || prev_sig == ',')) {
            cap_b = k + 1;
            break;
          }
          if (std::isspace(static_cast<unsigned char>(c)) == 0) prev_sig = c;
        }
        if (cap_b == std::string::npos) continue;  // no lambda argument
        // Capture list: up to the matching ']' at zero <>/(){} depth.
        int d2 = 0;
        std::size_t cap_e = std::string::npos;
        for (std::size_t k = cap_b; k < w.size(); ++k) {
          const char c = w[k];
          if (c == '<' || c == '(' || c == '{') ++d2;
          if (c == '>' || c == ')' || c == '}') --d2;
          if (c == ']' && d2 <= 0) {
            cap_e = k;
            break;
          }
        }
        if (cap_e == std::string::npos) continue;
        const std::string caps = w.substr(cap_b, cap_e - cap_b);
        // Split on top-level commas.
        std::vector<std::string> items;
        {
          int d3 = 0;
          std::string cur;
          for (char c : caps) {
            if (c == '<' || c == '(' || c == '{') ++d3;
            if (c == '>' || c == ')' || c == '}') --d3;
            if (c == ',' && d3 == 0) {
              items.push_back(cur);
              cur.clear();
            } else {
              cur.push_back(c);
            }
          }
          items.push_back(cur);
        }
        int total = 0;
        bool bail = false;
        std::vector<std::string> copies;
        for (const std::string& raw_item : items) {
          const std::string it = trim(raw_item);
          if (it.empty()) continue;
          if (it == "=" || it == "&") {
            bail = true;  // default captures: membership unknowable here
            break;
          }
          if (it == "this" || it == "*this" || it[0] == '&') {
            total += 8;
            continue;
          }
          // Init capture `x = expr`: the handler owns whatever expr yields
          // (usually moved in), sized by the source variable if known.
          std::size_t eq = std::string::npos;
          {
            int d3 = 0;
            for (std::size_t k = 0; k < it.size(); ++k) {
              const char c = it[k];
              if (c == '<' || c == '(' || c == '{') ++d3;
              if (c == '>' || c == ')' || c == '}') --d3;
              if (c == '=' && d3 == 0) {
                eq = k;
                break;
              }
            }
          }
          if (eq != std::string::npos) {
            const std::string src = trailing_ident(it.substr(eq + 1));
            auto v = vars.find(src);
            total += v != vars.end() ? v->second.size : 8;
            continue;
          }
          // Plain copy capture.
          auto v = vars.find(it);
          if (v != vars.end()) {
            total += v->second.size;
            if (v->second.alloc_on_copy) copies.push_back(it);
          } else {
            total += 8;
          }
        }
        if (bail) continue;
        const int line = static_cast<int>(li + 1);
        for (const std::string& c : copies) {
          findings->push_back(
              {line, Rule::R9,
               "kernel handler copy-captures allocating '" + c +
                   "' — move it into the capture or take a reference",
               "copy:" + c});
        }
        if (total > kSbo) {
          findings->push_back(
              {line, Rule::R9,
               "kernel handler captures ~" + std::to_string(total) +
                   " bytes, over the " + std::to_string(kSbo) +
                   "-byte InlineFunction SBO — the handler will heap-"
                   "allocate; shrink captures or allow(R9) if deliberate",
               "sbo:" + std::string(entry)});
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Phase 1: index one file.

FileIndex index_file(const Config& cfg, const std::string& rel_path,
                     const std::string& contents) {
  FileIndex ix;
  ix.rel_path = rel_path;
  ix.module = module_of(rel_path);
  ix.hash = fnv1a(contents);

  const std::vector<std::string> raw = split_lines(contents);
  const std::vector<std::string> code = strip_code(raw);
  const std::set<std::string> uvars = unordered_vars(code);

  std::vector<Finding>& findings = ix.local;
  parse_directives(raw, &ix.dirs, &ix.marks, &findings);

  // Hot-path regions: whole-file listing, or begin/end marker spans.
  const bool file_hot = starts_with_any(rel_path, cfg.hotpath_files);
  std::vector<std::pair<int, int>> hot_regions;
  {
    int open_at = 0;
    for (const HotMark& m : ix.marks) {
      if (m.begin) {
        if (open_at == 0) open_at = m.line;
      } else if (open_at != 0) {
        hot_regions.emplace_back(open_at, m.line);
        open_at = 0;
      } else {
        findings.push_back({m.line, Rule::Sup,
                            "hotpath end marker without a matching begin",
                            "hotpath-unmatched"});
      }
    }
    if (open_at != 0)  // unclosed region runs to EOF
      hot_regions.emplace_back(open_at, static_cast<int>(raw.size()));
  }
  const auto in_hot = [&](int line) {
    if (file_hot) return true;
    for (const auto& [b, e] : hot_regions)
      if (line >= b && line <= e) return true;
    return false;
  };

  const bool r1_allowed = starts_with_any(rel_path, cfg.r1_allow);
  const bool r3_allowed = starts_with_any(rel_path, cfg.r3_allow);

  for (std::size_t li = 0; li < code.size(); ++li) {
    const std::string& s = code[li];
    const int line = static_cast<int>(li + 1);
    std::size_t at = 0;

    if (!r1_allowed) {
      for (const Token& t : kR1Tokens) {
        if (match_token(s, t, &at)) {
          findings.push_back({line, Rule::R1,
                              std::string("nondeterminism source '") + t.text +
                                  "' — route randomness through ntco::Rng "
                                  "and time through sim::Simulator::now()",
                              t.text});
          break;  // one R1 per line is enough signal
        }
      }
    }

    if (!r3_allowed) {
      for (const Token& t : kR3Tokens) {
        if (match_token(s, t, &at)) {
          findings.push_back({line, Rule::R3,
                              std::string("threading primitive '") + t.text +
                                  "' outside src/fleet/ — the fleet layer "
                                  "owns all concurrency",
                              t.text});
          break;
        }
      }
    }

    // R6: allocation inside a hot-path region.
    if (in_hot(line)) {
      bool hit = false;
      for (const Token& t : kR6Alloc) {
        if (match_token(s, t, &at)) {
          findings.push_back(
              {line, Rule::R6,
               std::string("allocation on the hot path: '") + t.text +
                   "' — pre-size, pool, or reuse scratch storage; "
                   "allow(R6) with a reason if the allocation is amortized",
               t.text});
          hit = true;
          break;
        }
      }
      if (!hit) {
        for (const char* op : kR6Growth) {
          const std::string pat(op);
          std::size_t pos = 0;
          bool flagged = false;
          while ((pos = s.find(pat, pos)) != std::string::npos) {
            const std::size_t end = pos + pat.size();
            const bool member =
                pos > 0 && (s[pos - 1] == '.' || s[pos - 1] == '>');
            bool ok = member && !(end < s.size() && is_ident(s[end]));
            if (ok) {
              std::size_t j = end;
              while (j < s.size() &&
                     std::isspace(static_cast<unsigned char>(s[j])) != 0)
                ++j;
              ok = j < s.size() && s[j] == '(';
            }
            pos = end;
            if (ok) {
              findings.push_back(
                  {line, Rule::R6,
                   std::string("growth-prone container op '") + op +
                       "' on the hot path — allocation must be hoisted off "
                       "the serving path or allow(R6)-justified",
                   std::string("grow:") + op});
              flagged = true;
              break;
            }
          }
          if (flagged) break;
        }
      }
    }

    // R2: range-for over an unordered container, or an unordered
    // container's .begin()/.cbegin() inside a for-loop header. Sorted
    // extraction (copy out + sort, outside a for header) stays legal.
    if (!uvars.empty()) {
      const std::size_t fpos = s.find("for");
      const bool for_header =
          fpos != std::string::npos && left_ok(s, fpos) &&
          !(fpos + 3 < s.size() && is_ident(s[fpos + 3]));
      if (for_header) {
        const std::size_t open = s.find('(', fpos);
        // The range-for separator is the first ':' that is not part of a
        // '::' qualifier (e.g. `for (const std::string& k : keys)`).
        std::size_t colon = std::string::npos;
        for (std::size_t ci = fpos; ci < s.size(); ++ci) {
          if (s[ci] != ':') continue;
          if (ci + 1 < s.size() && s[ci + 1] == ':') {
            ++ci;  // skip both chars of '::'
            continue;
          }
          if (ci > 0 && s[ci - 1] == ':') continue;
          colon = ci;
          break;
        }
        bool flagged = false;
        if (open != std::string::npos && colon != std::string::npos &&
            colon > open) {
          std::size_t close = s.find_first_of(")", colon);
          const std::string expr = s.substr(
              colon + 1, (close == std::string::npos ? s.size() : close) -
                             colon - 1);
          const std::string id = trailing_ident(expr);
          if (uvars.count(id) != 0) {
            findings.push_back(
                {line, Rule::R2,
                 "iteration over unordered container '" + id +
                     "' — hash order is implementation-defined; extract "
                     "and sort first",
                 "range-for:" + id});
            flagged = true;
          }
        }
        if (!flagged) {
          for (const auto& v : uvars) {
            const std::string b1 = v + ".begin(";
            const std::string b2 = v + ".cbegin(";
            std::size_t bpos = s.find(b1, fpos);
            if (bpos == std::string::npos) bpos = s.find(b2, fpos);
            if (bpos != std::string::npos && left_ok(s, bpos)) {
              findings.push_back(
                  {line, Rule::R2,
                   "iterator loop over unordered container '" + v +
                       "' — hash order is implementation-defined",
                   "iter-loop:" + v});
              break;
            }
          }
        }
      }

      // R5: `+=` whose right-hand side reads out of an unordered
      // container; accumulation order then follows hash order.
      const std::size_t plus = s.find("+=");
      if (plus != std::string::npos) {
        const std::string rhs = s.substr(plus + 2);
        for (const auto& v : uvars) {
          std::size_t vp = 0;
          bool hit = false;
          while ((vp = rhs.find(v, vp)) != std::string::npos) {
            const std::size_t e = vp + v.size();
            if (left_ok(rhs, vp) && e < rhs.size() &&
                (rhs[e] == '[' || rhs.compare(e, 4, ".at(") == 0)) {
              hit = true;
              break;
            }
            vp = e;
          }
          if (hit) {
            findings.push_back(
                {line, Rule::R5,
                 "accumulating '" + v +
                     "' lookups with += — unordered visitation order makes "
                     "float sums run-dependent; accumulate in shard order",
                 v});
            break;
          }
        }
      }
    }

    // Include edges (cross-file rules R4/R8 consume these in phase 2).
    const std::string inc = ntco_include_path(raw[li]);
    if (!inc.empty()) ix.includes.push_back({line, inc});
  }

  // R9 runs over the whole file (needs the declared-variable type map).
  audit_handlers(code, r9_var_types(code), &findings);

  // Cross-file raw material. Declared symbols are collected for every
  // file: headers feed the R8 stale/missing maps, and a .cpp's own
  // namespace-scope forward declarations satisfy R8 (IWYU accepts a
  // forward declaration for pointer/reference uses).
  ix.declared = declared_symbols(raw, code);
  ix.used = used_idents(raw, code);
  ix.qualified = qualified_uses(code);
  ix.obs_uses = obs_call_sites(raw, code);

  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.line < b.line;
                   });
  return ix;
}

// ---------------------------------------------------------------------------
// Phase 2: cross-file rules + suppression application.

const char* obs_kind_of_api(const std::string& api) {
  if (api == "emit" || api == "trace_event") return "trace";
  return api.c_str();  // counter/gauge/summary/histogram name their kind
}

void phase2(const Config& cfg,
            const std::map<std::string, std::set<std::string>>& closure,
            std::vector<FileIndex>& files, Report& out) {
  // --- R7 setup: the central telemetry-name registry.
  const std::string registry_rel = cfg.names_registry;
  const fs::path registry_path = fs::path(cfg.root) / registry_rel;
  const std::vector<ObsNameEntry> entries =
      load_names_registry(registry_path.string());
  std::map<std::string, const ObsNameEntry*> by_name;
  std::map<std::string, std::vector<Finding>> cross;  // rel_path -> findings
  bool registry_scanned = false;
  for (const FileIndex& ix : files)
    if (ix.rel_path == registry_rel) registry_scanned = true;
  for (const ObsNameEntry& e : entries) {
    if (!by_name.emplace(e.name, &e).second && registry_scanned) {
      cross[registry_rel].push_back(
          {e.line, Rule::R7,
           "registry declares telemetry name '" + e.name + "' more than once",
           "dup:" + e.name});
    }
  }
  std::set<std::string> names_used;

  // --- R8 setup: which header (by include key) declares which symbols.
  std::map<std::string, const FileIndex*> headers;  // "ntco/mod/x.hpp" -> ix
  for (const FileIndex& ix : files) {
    const std::size_t inc = ix.rel_path.find("include/");
    if (inc == std::string::npos || ix.declared.empty()) continue;
    headers.emplace(ix.rel_path.substr(inc + 8), &ix);
  }
  // symbol -> declaring header keys (restricted per-module at lookup time).
  std::map<std::string, std::vector<std::string>> declarer_keys;
  for (const auto& [key, ix] : headers)
    for (const std::string& sym : ix->declared) declarer_keys[sym].push_back(key);

  // --- Per-file cross-file findings.
  for (FileIndex& ix : files) {
    std::vector<Finding>& fs_out = cross[ix.rel_path];

    // R4: every ntco include must follow the declared module DAG.
    for (const IncludeEdge& e : ix.includes) {
      const std::size_t slash = e.path.find('/', 5);
      const std::string target =
          slash == std::string::npos ? "" : e.path.substr(5, slash - 5);
      if (target.empty() || ix.module == "top" || target == ix.module)
        continue;
      const auto mod_it = closure.find(ix.module);
      const bool known_mod = cfg.dag.find(ix.module) != cfg.dag.end();
      const bool known_target = cfg.dag.find(target) != cfg.dag.end();
      if (!known_mod || !known_target) {
        fs_out.push_back({e.line, Rule::R4,
                          "include edge " + ix.module + " -> " + target +
                              " involves a module absent from the declared "
                              "DAG — declare it in the layering config",
                          "unknown:" + ix.module + "->" + target});
      } else if (mod_it == closure.end() ||
                 mod_it->second.count(target) == 0) {
        fs_out.push_back({e.line, Rule::R4,
                          "layering violation: " + ix.module + " -> " + target +
                              " is a back-edge of the declared module DAG",
                          "edge:" + ix.module + "->" + target});
      }
    }

    // R7 call sites: every literal telemetry name must be registered with
    // the matching kind. Disabled when no registry exists (fixture trees).
    if (!entries.empty() && starts_with_any(ix.rel_path, cfg.r7_scope)) {
      for (const ObsUse& u : ix.obs_uses) {
        const std::string kind = obs_kind_of_api(u.api);
        auto it = by_name.find(u.name);
        if (it == by_name.end()) {
          fs_out.push_back({u.line, Rule::R7,
                            "telemetry name '" + u.name + "' (" + kind +
                                ") is not in the obs name registry — add an "
                                "NTCO_OBS_NAME row to " + registry_rel,
                            "name:" + u.name});
        } else {
          names_used.insert(u.name);
          if (it->second->kind != kind) {
            fs_out.push_back({u.line, Rule::R7,
                              "telemetry name '" + u.name +
                                  "' is registered as a " + it->second->kind +
                                  " but used here as a " + kind,
                              "kind:" + u.name});
          }
        }
      }
    }

    // R8: include hygiene over the declared/used index.
    if (starts_with_any(ix.rel_path, cfg.r8_scope)) {
      const std::set<std::string> used(ix.used.begin(), ix.used.end());
      std::set<std::string> direct;  // directly included header keys
      for (const IncludeEdge& e : ix.includes) direct.insert(e.path);

      // IWYU's associated-header exemption: foo.cpp's own foo.hpp
      // re-exports its direct includes, so the .cpp need not repeat them.
      if (ix.rel_path.size() > 4 &&
          ix.rel_path.compare(ix.rel_path.size() - 4, 4, ".cpp") == 0) {
        const std::size_t slash = ix.rel_path.rfind('/');
        const std::string stem = ix.rel_path.substr(
            slash + 1, ix.rel_path.size() - slash - 1 - 4);
        const std::string assoc = "ntco/" + ix.module + "/" + stem + ".hpp";
        if (direct.count(assoc) != 0) {
          auto ah = headers.find(assoc);
          if (ah != headers.end())
            for (const IncludeEdge& e : ah->second->includes)
              direct.insert(e.path);
        }
      }

      for (const IncludeEdge& e : ix.includes) {
        auto hit = headers.find(e.path);
        if (hit == headers.end() || hit->second == &ix) continue;
        bool any_used = false;
        for (const std::string& sym : hit->second->declared) {
          if (used.count(sym) != 0) {
            any_used = true;
            break;
          }
        }
        if (!any_used) {
          fs_out.push_back({e.line, Rule::R8,
                            "stale include " + e.path +
                                " — none of its declared symbols are used "
                                "in this file",
                            "stale:" + e.path});
        }
      }

      const std::string self_key = [&] {
        const std::size_t inc = ix.rel_path.find("include/");
        return inc == std::string::npos ? std::string()
                                        : ix.rel_path.substr(inc + 8);
      }();
      const std::set<std::string> self_declared(ix.declared.begin(),
                                                ix.declared.end());
      for (const QualUse& q : ix.qualified) {
        const std::string mod = q.ns == "ntco" ? "common" : q.ns;
        if (cfg.dag.find(mod) == cfg.dag.end()) continue;
        if (self_declared.count(q.sym) != 0) continue;
        auto dk = declarer_keys.find(q.sym);
        if (dk == declarer_keys.end()) continue;
        std::vector<std::string> in_mod;
        for (const std::string& key : dk->second) {
          const std::size_t slash = key.find('/', 5);
          if (slash != std::string::npos &&
              key.substr(5, slash - 5) == mod)
            in_mod.push_back(key);
        }
        if (in_mod.size() != 1) continue;  // ambiguous or foreign: skip
        const std::string& key = in_mod.front();
        if (key == self_key || direct.count(key) != 0) continue;
        // Re-exported by a directly included header? Then it is fine.
        bool reexported = false;
        for (const std::string& d : direct) {
          auto h = headers.find(d);
          if (h != headers.end() &&
              std::find(h->second->declared.begin(),
                        h->second->declared.end(),
                        q.sym) != h->second->declared.end()) {
            reexported = true;
            break;
          }
        }
        if (reexported) continue;
        fs_out.push_back({q.line, Rule::R8,
                          "uses " + q.ns + "::" + q.sym +
                              " without directly including its declaring "
                              "header " + key,
                          "missing:" + key});
      }
    }
  }

  // R7 dead names: only meaningful when the whole tree (including the
  // registry itself) was scanned — single-file analysis sees too little.
  if (registry_scanned) {
    for (const ObsNameEntry& e : entries) {
      if (names_used.count(e.name) != 0) continue;
      cross[registry_rel].push_back(
          {e.line, Rule::R7,
           "registry telemetry name '" + e.name + "' (" + e.kind +
               ") is emitted nowhere in the scanned tree — delete the dead "
               "row or wire up the emitter",
           "dead:" + e.name});
    }
  }

  // --- Assemble per-file, apply suppressions, track stale directives.
  for (FileIndex& ix : files) {
    std::vector<Finding> all = ix.local;
    auto extra = cross.find(ix.rel_path);
    if (extra != cross.end())
      all.insert(all.end(), extra->second.begin(), extra->second.end());
    std::stable_sort(all.begin(), all.end(),
                     [](const Finding& a, const Finding& b) {
                       return a.line < b.line;
                     });
    std::vector<char> dir_used(ix.dirs.size(), 0);
    for (const Finding& f : all) {
      if (f.rule != Rule::Sup) {
        bool hit = false;
        // Every covering directive is credited (no early break): directives
        // on consecutive lines each cover the next line, and crediting only
        // the first would mark the later one stale.
        for (std::size_t di = 0; di < ix.dirs.size(); ++di) {
          const Directive& d = ix.dirs[di];
          if ((f.line == d.line || f.line == d.line + 1) &&
              d.rules.count(f.rule) != 0) {
            dir_used[di] = 1;
            hit = true;
          }
        }
        if (hit) continue;
      }
      out.diagnostics.push_back({ix.rel_path, f.line, f.rule, f.message,
                                 ix.rel_path + "|" + rule_name(f.rule) + "|" +
                                     f.detail});
    }
    for (std::size_t di = 0; di < ix.dirs.size(); ++di) {
      const Directive& d = ix.dirs[di];
      out.suppressions.push_back({ix.rel_path, d.line, d.rules_text, d.reason});
      if (dir_used[di] == 0)
        out.stale_suppressions.push_back(
            {ix.rel_path, d.line, d.rules_text, d.reason});
    }
  }
}

// ---------------------------------------------------------------------------
// Phase-1 cache: one text file holding every FileIndex, keyed by content
// hash and a config hash. Sound because phase 2 (cheap) always reruns over
// the loaded indexes.

std::uint64_t config_hash(const Config& cfg) {
  std::uint64_t h = 14695981039346656037ULL;
  const auto mix = [&h](const std::string& s) { h = fnv1a(s + "\x1f", h); };
  mix("v2");
  for (const auto& s : cfg.roots) mix(s);
  for (const auto& s : cfg.exclude) mix(s);
  for (const auto& s : cfg.r1_allow) mix(s);
  for (const auto& s : cfg.r3_allow) mix(s);
  for (const auto& [m, deps] : cfg.dag) {
    mix(m);
    for (const auto& d : deps) mix(d);
  }
  for (const auto& s : cfg.hotpath_files) mix(s);
  mix(cfg.names_registry);
  for (const auto& s : cfg.r7_scope) mix(s);
  for (const auto& s : cfg.r8_scope) mix(s);
  return h;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

void save_cache(const std::string& path, std::uint64_t cfg_hash,
                const std::vector<FileIndex>& files) {
  std::ofstream outf(path, std::ios::binary | std::ios::trunc);
  if (!outf) return;  // cache is best-effort
  outf << "ntco-lint-cache v2 " << hex64(cfg_hash) << "\n";
  for (const FileIndex& ix : files) {
    outf << "F " << hex64(ix.hash) << ' ' << ix.module << ' ' << ix.rel_path
         << "\n";
    for (const Finding& f : ix.local)
      outf << "L " << f.line << ' ' << static_cast<int>(f.rule) << '\t'
           << f.detail << '\t' << f.message << "\n";
    for (const Directive& d : ix.dirs)
      outf << "D " << d.line << '\t' << d.rules_text << '\t' << d.reason
           << "\n";
    for (const HotMark& m : ix.marks)
      outf << "H " << m.line << ' ' << (m.begin ? 1 : 0) << "\n";
    for (const IncludeEdge& e : ix.includes)
      outf << "I " << e.line << ' ' << e.path << "\n";
    for (const std::string& s : ix.declared) outf << "S " << s << "\n";
    for (const std::string& s : ix.used) outf << "U " << s << "\n";
    for (const QualUse& q : ix.qualified)
      outf << "Q " << q.line << ' ' << q.ns << ' ' << q.sym << "\n";
    for (const ObsUse& u : ix.obs_uses)
      outf << "O " << u.line << ' ' << u.api << '\t' << u.name << "\n";
    outf << "E\n";
  }
}

std::map<std::string, FileIndex> load_cache(const std::string& path,
                                            std::uint64_t cfg_hash) {
  std::map<std::string, FileIndex> out;
  std::ifstream inf(path, std::ios::binary);
  if (!inf) return out;
  std::string line;
  if (!std::getline(inf, line) ||
      line != "ntco-lint-cache v2 " + hex64(cfg_hash))
    return out;  // different config or format: full re-index
  FileIndex cur;
  bool open = false;
  const auto split_tabs = [](const std::string& s) {
    std::vector<std::string> parts;
    std::size_t b = 0;
    for (;;) {
      const std::size_t t = s.find('\t', b);
      parts.push_back(s.substr(b, t == std::string::npos ? t : t - b));
      if (t == std::string::npos) break;
      b = t + 1;
    }
    return parts;
  };
  while (std::getline(inf, line)) {
    if (line.empty()) continue;
    const char tag = line[0];
    const std::string rest = line.size() > 2 ? line.substr(2) : "";
    if (tag == 'F') {
      std::istringstream ss(rest);
      std::string hash_s, module, rel;
      ss >> hash_s >> module;
      std::getline(ss, rel);
      cur = FileIndex{};
      cur.hash = std::stoull(hash_s, nullptr, 16);
      cur.module = module;
      cur.rel_path = trim(rel);
      open = true;
    } else if (!open) {
      continue;
    } else if (tag == 'E') {
      out.emplace(cur.rel_path, std::move(cur));
      cur = FileIndex{};
      open = false;
    } else if (tag == 'L') {
      const auto parts = split_tabs(rest);
      if (parts.size() != 3) continue;
      std::istringstream ss(parts[0]);
      int ln = 0, rl = 0;
      ss >> ln >> rl;
      if (rl < 0 || rl > static_cast<int>(Rule::Sup)) continue;
      cur.local.push_back({ln, static_cast<Rule>(rl), parts[2], parts[1]});
    } else if (tag == 'D') {
      const auto parts = split_tabs(rest);
      if (parts.size() != 3) continue;
      Directive d;
      d.line = std::atoi(parts[0].c_str());
      d.rules_text = parts[1];
      d.reason = parts[2];
      std::stringstream ss(d.rules_text);
      std::string item;
      while (std::getline(ss, item, ',')) {
        bool ok = false;
        const Rule r = parse_rule(trim(item), &ok);
        if (ok) d.rules.insert(r);
      }
      cur.dirs.push_back(std::move(d));
    } else if (tag == 'H') {
      std::istringstream ss(rest);
      int ln = 0, b = 0;
      ss >> ln >> b;
      cur.marks.push_back({ln, b != 0});
    } else if (tag == 'I') {
      std::istringstream ss(rest);
      IncludeEdge e;
      ss >> e.line >> e.path;
      cur.includes.push_back(std::move(e));
    } else if (tag == 'S') {
      cur.declared.push_back(rest);
    } else if (tag == 'U') {
      cur.used.push_back(rest);
    } else if (tag == 'Q') {
      std::istringstream ss(rest);
      QualUse q;
      ss >> q.line >> q.ns >> q.sym;
      cur.qualified.push_back(std::move(q));
    } else if (tag == 'O') {
      const auto parts = split_tabs(rest);
      if (parts.size() != 2) continue;
      std::istringstream ss(parts[0]);
      ObsUse u;
      ss >> u.line >> u.api;
      u.name = parts[1];
      cur.obs_uses.push_back(std::move(u));
    }
  }
  return out;
}

std::string json_escape(const std::string& s) {
  std::string o;
  o.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': o += "\\\""; break;
      case '\\': o += "\\\\"; break;
      case '\n': o += "\\n"; break;
      case '\t': o += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          o += buf;
        } else {
          o += c;
        }
    }
  }
  return o;
}

}  // namespace

const char* rule_name(Rule r) {
  switch (r) {
    case Rule::R1: return "R1";
    case Rule::R2: return "R2";
    case Rule::R3: return "R3";
    case Rule::R4: return "R4";
    case Rule::R5: return "R5";
    case Rule::R6: return "R6";
    case Rule::R7: return "R7";
    case Rule::R8: return "R8";
    case Rule::R9: return "R9";
    case Rule::Sup: break;
  }
  return "sup";
}

Config default_config(std::string root) {
  Config cfg;
  cfg.root = std::move(root);
  // Declared layering, bottom-up (see DESIGN.md "Static analysis &
  // determinism contract"): an include is legal iff its target is
  // reachable from the includer through these direct edges.
  cfg.dag = {
      {"common", {}},
      {"stats", {"common"}},
      {"dataplane", {"sim", "common", "obs"}},
      {"fleet", {"common", "dataplane"}},
      {"device", {"common"}},
      {"app", {"common", "obs"}},
      {"lint", {}},
      {"obs", {"stats"}},
      {"sim", {"obs"}},
      {"net", {"obs"}},
      {"fabric", {"sim", "net", "common", "obs"}},
      {"serverless", {"sim"}},
      {"edgesim", {"sim"}},
      {"profile", {"app", "stats"}},
      {"partition", {"app", "device"}},
      {"sched", {"serverless", "net", "device", "stats"}},
      {"alloc", {"serverless"}},
      {"core", {"alloc", "partition", "net", "app", "device"}},
      {"broker", {"core", "sched", "obs", "dataplane", "net"}},
      {"continuum",
       {"serverless", "edgesim", "net", "fabric", "sim", "core", "obs",
        "common"}},
      {"cicd", {"core", "profile"}},
  };
  // Hot-path file list: one relative path prefix per line.
  std::ifstream hp(fs::path(cfg.root) / "tools" / "lint_hotpath.txt");
  if (hp) {
    std::string line;
    while (std::getline(hp, line)) {
      const std::string t = trim(line);
      if (!t.empty() && t[0] != '#') cfg.hotpath_files.push_back(t);
    }
  }
  return cfg;
}

void analyze_source(const Config& cfg, const std::string& rel_path,
                    const std::string& contents, Report& out) {
  const auto closure = dag_closure(cfg.dag);
  std::vector<FileIndex> one;
  one.push_back(index_file(cfg, rel_path, contents));
  phase2(cfg, closure, one, out);
  ++out.files_scanned;
}

Report run(const Config& cfg, const std::string& cache_path) {
  const auto closure = dag_closure(cfg.dag);
  Report rep;

  const std::set<std::string> exts{".hpp", ".cpp", ".h",
                                   ".cc",  ".hxx", ".cxx"};
  std::vector<fs::path> files;
  for (const auto& r : cfg.roots) {
    const fs::path base = fs::path(cfg.root) / r;
    if (fs::is_regular_file(base)) {
      files.push_back(base);
    } else if (fs::is_directory(base)) {
      for (const auto& e : fs::recursive_directory_iterator(base))
        if (e.is_regular_file() &&
            exts.count(e.path().extension().string()) != 0)
          files.push_back(e.path());
    }
  }
  std::sort(files.begin(), files.end());  // deterministic diagnostic order

  const std::uint64_t cfg_hash = config_hash(cfg);
  std::map<std::string, FileIndex> cached;
  if (!cache_path.empty()) cached = load_cache(cache_path, cfg_hash);

  std::vector<FileIndex> index;
  index.reserve(files.size());
  for (const fs::path& p : files) {
    std::string rel = fs::relative(p, cfg.root).generic_string();
    if (starts_with_any(rel, cfg.exclude)) continue;
    std::ifstream in(p, std::ios::binary);
    if (!in) continue;
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string contents = ss.str();
    const std::uint64_t h = fnv1a(contents);
    auto hit = cached.find(rel);
    if (hit != cached.end() && hit->second.hash == h) {
      index.push_back(std::move(hit->second));
      ++rep.cache_hits;
    } else {
      index.push_back(index_file(cfg, rel, contents));
      ++rep.cache_misses;
    }
    ++rep.files_scanned;
  }

  phase2(cfg, closure, index, rep);
  if (!cache_path.empty()) save_cache(cache_path, cfg_hash, index);
  return rep;
}

Baseline Baseline::from_string(const std::string& text) {
  Baseline b;
  for (const std::string& line : split_lines(text)) {
    const std::string t = trim(line);
    if (t.empty() || t[0] == '#') continue;
    ++b.counts_[t];
  }
  return b;
}

Baseline Baseline::from_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read baseline file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return from_string(ss.str());
}

std::vector<Diagnostic> Baseline::filter_new(
    const std::vector<Diagnostic>& all) const {
  std::map<std::string, int> budget = counts_;
  std::vector<Diagnostic> fresh;
  for (const Diagnostic& d : all) {
    auto it = budget.find(d.fingerprint);
    if (it != budget.end() && it->second > 0)
      --it->second;  // absorbed by pre-existing debt
    else
      fresh.push_back(d);
  }
  return fresh;
}

std::string Baseline::to_text(const std::vector<Diagnostic>& all) {
  std::vector<std::string> fps;
  fps.reserve(all.size());
  for (const Diagnostic& d : all) fps.push_back(d.fingerprint);
  std::sort(fps.begin(), fps.end());
  std::string out =
      "# ntco-lint baseline: one fingerprint (file|rule|detail) per line.\n"
      "# Entries absorb matching pre-existing diagnostics; new debt fails.\n"
      "# Regenerate with: ntco-lint --write-baseline <this file>\n";
  for (const auto& f : fps) {
    out += f;
    out += '\n';
  }
  return out;
}

std::size_t Baseline::size() const {
  std::size_t n = 0;
  for (const auto& [fp, c] : counts_) n += static_cast<std::size_t>(c);
  return n;
}

std::string to_json(const Report& report, const std::vector<Diagnostic>& fresh) {
  // Identify freshness positionally by fingerprint multiset membership.
  std::map<std::string, int> fresh_counts;
  for (const Diagnostic& d : fresh) ++fresh_counts[d.fingerprint];

  std::ostringstream o;
  o << "{\n";
  o << "  \"files_scanned\": " << report.files_scanned << ",\n";
  o << "  \"diagnostics_total\": " << report.diagnostics.size() << ",\n";
  o << "  \"diagnostics_new\": " << fresh.size() << ",\n";
  o << "  \"diagnostics_baselined\": "
    << report.diagnostics.size() - fresh.size() << ",\n";
  o << "  \"suppressions\": " << report.suppressions.size() << ",\n";
  o << "  \"stale_suppressions\": " << report.stale_suppressions.size()
    << ",\n";
  o << "  \"cache_hits\": " << report.cache_hits << ",\n";
  o << "  \"cache_misses\": " << report.cache_misses << ",\n";
  o << "  \"diagnostics\": [";
  for (std::size_t i = 0; i < report.diagnostics.size(); ++i) {
    const Diagnostic& d = report.diagnostics[i];
    bool is_new = false;
    auto it = fresh_counts.find(d.fingerprint);
    if (it != fresh_counts.end() && it->second > 0) {
      --it->second;
      is_new = true;
    }
    o << (i == 0 ? "\n" : ",\n");
    o << "    {\"file\": \"" << json_escape(d.file) << "\", \"line\": "
      << d.line << ", \"rule\": \"" << rule_name(d.rule)
      << "\", \"new\": " << (is_new ? "true" : "false")
      << ", \"fingerprint\": \"" << json_escape(d.fingerprint)
      << "\", \"message\": \"" << json_escape(d.message) << "\"}";
  }
  o << (report.diagnostics.empty() ? "],\n" : "\n  ],\n");
  o << "  \"suppression_list\": [";
  for (std::size_t i = 0; i < report.suppressions.size(); ++i) {
    const Suppression& s = report.suppressions[i];
    o << (i == 0 ? "\n" : ",\n");
    o << "    {\"file\": \"" << json_escape(s.file) << "\", \"line\": "
      << s.line << ", \"rules\": \"" << json_escape(s.rules)
      << "\", \"reason\": \"" << json_escape(s.reason) << "\"}";
  }
  o << (report.suppressions.empty() ? "],\n" : "\n  ],\n");
  o << "  \"stale_suppression_list\": [";
  for (std::size_t i = 0; i < report.stale_suppressions.size(); ++i) {
    const Suppression& s = report.stale_suppressions[i];
    o << (i == 0 ? "\n" : ",\n");
    o << "    {\"file\": \"" << json_escape(s.file) << "\", \"line\": "
      << s.line << ", \"rules\": \"" << json_escape(s.rules) << "\"}";
  }
  o << (report.stale_suppressions.empty() ? "]\n" : "\n  ]\n");
  o << "}\n";
  return o.str();
}

std::string to_sarif(const Report& report,
                     const std::vector<Diagnostic>& fresh) {
  std::map<std::string, int> fresh_counts;
  for (const Diagnostic& d : fresh) ++fresh_counts[d.fingerprint];

  static const struct {
    const char* id;
    const char* desc;
  } kRules[] = {
      {"R1", "No nondeterminism sources outside the sanctioned allowlist"},
      {"R2", "No iteration over unordered containers"},
      {"R3", "No threading primitives outside src/fleet/"},
      {"R4", "Include edges must follow the declared module DAG"},
      {"R5", "No += accumulation of unordered-container lookups"},
      {"R6", "No allocation inside hot-path regions"},
      {"R7", "Telemetry names must be registered in obs/names.hpp"},
      {"R8", "Include hygiene: no stale or missing direct ntco includes"},
      {"R9", "Kernel handlers must fit the InlineFunction SBO"},
      {"sup", "Malformed suppression or hot-path marker"},
  };

  std::ostringstream o;
  o << "{\n"
    << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
    << "  \"version\": \"2.1.0\",\n"
    << "  \"runs\": [\n"
    << "    {\n"
    << "      \"tool\": {\n"
    << "        \"driver\": {\n"
    << "          \"name\": \"ntco-lint\",\n"
    << "          \"informationUri\": "
       "\"https://example.invalid/ntco/DESIGN.md\",\n"
    << "          \"rules\": [";
  for (std::size_t i = 0; i < sizeof kRules / sizeof kRules[0]; ++i) {
    o << (i == 0 ? "\n" : ",\n");
    o << "            {\"id\": \"" << kRules[i].id
      << "\", \"shortDescription\": {\"text\": \"" << kRules[i].desc
      << "\"}}";
  }
  o << "\n          ]\n"
    << "        }\n"
    << "      },\n"
    << "      \"results\": [";
  for (std::size_t i = 0; i < report.diagnostics.size(); ++i) {
    const Diagnostic& d = report.diagnostics[i];
    bool is_new = false;
    auto it = fresh_counts.find(d.fingerprint);
    if (it != fresh_counts.end() && it->second > 0) {
      --it->second;
      is_new = true;
    }
    o << (i == 0 ? "\n" : ",\n");
    o << "        {\"ruleId\": \"" << rule_name(d.rule) << "\", \"level\": \""
      << (is_new ? "error" : "note")
      << "\", \"message\": {\"text\": \"" << json_escape(d.message)
      << "\"}, \"partialFingerprints\": {\"ntcoLint/v1\": \""
      << json_escape(d.fingerprint)
      << "\"}, \"locations\": [{\"physicalLocation\": "
         "{\"artifactLocation\": {\"uri\": \""
      << json_escape(d.file) << "\"}, \"region\": {\"startLine\": "
      << (d.line > 0 ? d.line : 1) << "}}}]}";
  }
  o << (report.diagnostics.empty() ? "]\n" : "\n      ]\n");
  o << "    }\n"
    << "  ]\n"
    << "}\n";
  return o.str();
}

// ---------------------------------------------------------------------------
// Telemetry-name registry.

std::vector<ObsNameEntry> load_names_registry(const std::string& path) {
  std::vector<ObsNameEntry> out;
  std::ifstream in(path, std::ios::binary);
  if (!in) return out;
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::vector<std::string> raw = split_lines(ss.str());
  const std::string row_kw = "NTCO_OBS_NAME";
  for (std::size_t li = 0; li < raw.size(); ++li) {
    const std::string& line = raw[li];
    const std::string t = trim(line);
    if (t.rfind("#define", 0) == 0) continue;  // the macro itself
    if (t.rfind("//", 0) == 0) continue;       // doc-comment example rows
    std::size_t pos = line.find(row_kw);
    if (pos == std::string::npos) continue;
    if (pos > 0 && is_ident(line[pos - 1])) continue;
    std::size_t open = line.find('(', pos + row_kw.size());
    if (open == std::string::npos) continue;
    // Join lines until the row's parens balance (rows are usually one line).
    std::string row = line.substr(open + 1);
    std::size_t lj = li;
    int depth = 1;
    std::string args;
    bool done = false;
    while (!done) {
      for (char c : row) {
        if (c == '(') ++depth;
        if (c == ')' && --depth == 0) {
          done = true;
          break;
        }
        args.push_back(c);
      }
      if (done) break;
      if (++lj >= raw.size()) break;
      row = raw[lj];
      args.push_back(' ');
    }
    if (!done) continue;
    // Split top-level commas into ident, kind, "name", "fields".
    std::vector<std::string> parts;
    {
      int d = 0;
      bool in_str = false;
      std::string cur;
      for (char c : args) {
        if (c == '"') in_str = !in_str;
        if (!in_str) {
          if (c == '(' || c == '<' || c == '{') ++d;
          if (c == ')' || c == '>' || c == '}') --d;
          if (c == ',' && d == 0) {
            parts.push_back(cur);
            cur.clear();
            continue;
          }
        }
        cur.push_back(c);
      }
      parts.push_back(cur);
    }
    if (parts.size() != 4) continue;
    const auto unquote = [](const std::string& s) {
      const std::string u = trim(s);
      if (u.size() >= 2 && u.front() == '"' && u.back() == '"')
        return u.substr(1, u.size() - 2);
      return u;
    };
    ObsNameEntry e;
    e.ident = trim(parts[0]);
    e.kind = trim(parts[1]);
    e.name = unquote(parts[2]);
    e.fields = unquote(parts[3]);
    e.line = static_cast<int>(li + 1);
    if (!e.ident.empty() && !e.kind.empty() && !e.name.empty())
      out.push_back(std::move(e));
  }
  return out;
}

std::string names_markdown(const std::vector<ObsNameEntry>& entries) {
  std::ostringstream o;
  o << "### Trace events\n\n"
    << "| Event | Fields |\n"
    << "|---|---|\n";
  for (const ObsNameEntry& e : entries)
    if (e.kind == "trace")
      o << "| `" << e.name << "` | " << (e.fields.empty() ? "—" : e.fields)
        << " |\n";
  static const std::pair<const char*, const char*> kKindHeadings[] = {
      {"counter", "Counters"},
      {"gauge", "Gauges"},
      {"summary", "Summaries"},
      {"histogram", "Histograms"},
  };
  for (const auto& [kind, heading] : kKindHeadings) {
    bool any = false;
    for (const ObsNameEntry& e : entries) any = any || e.kind == kind;
    if (!any) continue;
    o << "\n### " << heading << "\n\n"
      << "| Metric | Notes |\n"
      << "|---|---|\n";
    for (const ObsNameEntry& e : entries)
      if (e.kind == kind)
        o << "| `" << e.name << "` | " << (e.fields.empty() ? "—" : e.fields)
          << " |\n";
  }
  return o.str();
}

}  // namespace ntco::lint
