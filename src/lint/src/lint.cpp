#include "ntco/lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace ntco::lint {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Small string helpers.

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

bool starts_with_any(const std::string& path,
                     const std::vector<std::string>& prefixes) {
  for (const auto& p : prefixes)
    if (path.rfind(p, 0) == 0) return true;
  return false;
}

// ---------------------------------------------------------------------------
// Pass 1: strip comments and string/char literals.
//
// The token rules must not fire on prose ("std::thread is banned here") or
// on pattern strings, so everything inside comments and literals is blanked
// to spaces before matching. Line structure is preserved so diagnostics can
// report 1-based line numbers. Handles //, /*...*/, "...", '...', and the
// empty-delimiter raw string R"(...)" form; exotic raw-string delimiters
// are rare enough in this tree (currently absent) to leave to R2's fixture
// suite if they ever appear.

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else if (c != '\r') {
      cur.push_back(c);
    }
  }
  lines.push_back(cur);
  return lines;
}

std::vector<std::string> strip_code(const std::vector<std::string>& raw) {
  enum class St { Code, Block, Str, Chr, Raw };
  St st = St::Code;
  std::vector<std::string> out;
  out.reserve(raw.size());
  for (const std::string& line : raw) {
    std::string s(line.size(), ' ');
    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      const char n = i + 1 < line.size() ? line[i + 1] : '\0';
      switch (st) {
        case St::Code:
          if (c == '/' && n == '/') {
            i = line.size();  // rest of line is comment
          } else if (c == '/' && n == '*') {
            st = St::Block;
            ++i;
          } else if (c == 'R' && n == '"' && i + 2 < line.size() &&
                     line[i + 2] == '(' &&
                     (i == 0 || !is_ident(line[i - 1]))) {
            st = St::Raw;
            i += 2;
          } else if (c == '"') {
            st = St::Str;
          } else if (c == '\'') {
            st = St::Chr;
          } else {
            s[i] = c;
          }
          break;
        case St::Block:
          if (c == '*' && n == '/') {
            st = St::Code;
            ++i;
          }
          break;
        case St::Str:
          if (c == '\\') {
            ++i;
          } else if (c == '"') {
            st = St::Code;
          }
          break;
        case St::Chr:
          if (c == '\\') {
            ++i;
          } else if (c == '\'') {
            st = St::Code;
          }
          break;
        case St::Raw:
          if (c == ')' && n == '"') {
            st = St::Code;
            ++i;
          }
          break;
      }
    }
    // Unterminated " or ' at end of line: treat as closed (not valid C++
    // anyway; keeps the stripper from eating the rest of the file).
    if (st == St::Str || st == St::Chr) st = St::Code;
    out.push_back(std::move(s));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Token matching with identifier-boundary context.

enum class Kind {
  Call,    // identifier-bounded, must be followed by '(' — e.g. time(
  Word,    // identifier-bounded on both sides — e.g. steady_clock
  Prefix,  // identifier-bounded on the left only — e.g. std::atomic<...>
};

struct Token {
  const char* text;
  Kind kind;
};

// Leading boundary: not part of a longer identifier and not a member
// access (`x.time(...)`, `p->time(...)`). A `::` qualifier is *not* a
// boundary-breaker, so `std::getenv(` matches the `getenv` call token.
bool left_ok(const std::string& s, std::size_t pos) {
  if (pos == 0) return true;
  const char b = s[pos - 1];
  return !is_ident(b) && b != '.' && b != '>';
}

bool match_token(const std::string& s, const Token& t, std::size_t* at) {
  const std::string pat(t.text);
  std::size_t pos = 0;
  while ((pos = s.find(pat, pos)) != std::string::npos) {
    const std::size_t end = pos + pat.size();
    const bool right_word = end < s.size() && is_ident(s[end]);
    bool ok = left_ok(s, pos);
    if (ok) {
      switch (t.kind) {
        case Kind::Word:
          ok = !right_word;
          break;
        case Kind::Prefix:
          break;
        case Kind::Call: {
          ok = !right_word;
          if (ok) {
            std::size_t j = end;
            while (j < s.size() &&
                   std::isspace(static_cast<unsigned char>(s[j])) != 0)
              ++j;
            ok = j < s.size() && s[j] == '(';
          }
          break;
        }
      }
    }
    if (ok) {
      *at = pos;
      return true;
    }
    pos = end;
  }
  return false;
}

// R1: nondeterminism sources. Wall clocks, process environment, and raw
// <random> machinery; everything stochastic must flow through ntco::Rng and
// everything temporal through sim::Simulator::now().
const Token kR1Tokens[] = {
    {"random_device", Kind::Word},   {"rand", Kind::Call},
    {"srand", Kind::Call},           {"time", Kind::Call},
    {"clock", Kind::Call},           {"getenv", Kind::Call},
    {"gettimeofday", Kind::Call},    {"localtime", Kind::Call},
    {"gmtime", Kind::Call},          {"system_clock", Kind::Word},
    {"steady_clock", Kind::Word},    {"high_resolution_clock", Kind::Word},
    {"mt19937", Kind::Prefix},       {"minstd_rand", Kind::Prefix},
    {"default_random_engine", Kind::Word},
};

// R3: threading primitives; the fleet layer owns all concurrency.
const Token kR3Tokens[] = {
    {"std::thread", Kind::Word},     {"std::jthread", Kind::Word},
    {"std::mutex", Kind::Word},      {"std::shared_mutex", Kind::Word},
    {"std::timed_mutex", Kind::Word},
    {"std::recursive_mutex", Kind::Word},
    {"std::condition_variable", Kind::Prefix},
    {"std::atomic", Kind::Prefix},   {"std::lock_guard", Kind::Word},
    {"std::unique_lock", Kind::Word},
    {"std::scoped_lock", Kind::Word},
    {"std::this_thread", Kind::Word},
    {"std::async", Kind::Word},      {"std::future", Kind::Word},
    {"std::promise", Kind::Word},    {"std::barrier", Kind::Word},
    {"std::latch", Kind::Word},
    {"std::counting_semaphore", Kind::Prefix},
};

// ---------------------------------------------------------------------------
// R2/R5 support: names of variables declared with an unordered container
// type anywhere in the file (declarations, members, parameters).

std::set<std::string> unordered_vars(const std::vector<std::string>& code) {
  std::set<std::string> vars;
  // Join for decl scanning only; diagnostics never come from this pass.
  std::string all;
  for (const auto& l : code) {
    all += l;
    all += '\n';
  }
  const std::string pats[] = {"unordered_map", "unordered_set",
                              "unordered_multimap", "unordered_multiset"};
  for (const auto& pat : pats) {
    std::size_t pos = 0;
    while ((pos = all.find(pat, pos)) != std::string::npos) {
      std::size_t i = pos + pat.size();
      pos = i;
      while (i < all.size() &&
             std::isspace(static_cast<unsigned char>(all[i])) != 0)
        ++i;
      if (i >= all.size() || all[i] != '<') continue;  // include line etc.
      int depth = 0;
      for (; i < all.size(); ++i) {
        if (all[i] == '<') ++depth;
        if (all[i] == '>' && --depth == 0) break;
      }
      if (i >= all.size()) continue;
      ++i;  // past '>'
      // Skip refs/pointers/cv and whitespace before the declared name.
      for (;;) {
        while (i < all.size() &&
               (std::isspace(static_cast<unsigned char>(all[i])) != 0 ||
                all[i] == '&' || all[i] == '*'))
          ++i;
        if (all.compare(i, 5, "const") == 0 &&
            (i + 5 >= all.size() || !is_ident(all[i + 5]))) {
          i += 5;
          continue;
        }
        break;
      }
      std::string name;
      while (i < all.size() && is_ident(all[i])) name.push_back(all[i++]);
      if (!name.empty() &&
          std::isdigit(static_cast<unsigned char>(name[0])) == 0)
        vars.insert(name);
    }
  }
  return vars;
}

// The trailing identifier of a range-for's range expression: `m`,
// `obj.members` -> "members", `(*p).idx_` -> "idx_".
std::string trailing_ident(const std::string& expr) {
  std::string e = trim(expr);
  while (!e.empty() && (e.back() == ')' || e.back() == ' ')) e.pop_back();
  std::size_t i = e.size();
  while (i > 0 && is_ident(e[i - 1])) --i;
  return e.substr(i);
}

// ---------------------------------------------------------------------------
// R4: module layering.

std::string module_of(const std::string& rel_path) {
  if (rel_path.rfind("src/", 0) == 0) {
    const std::size_t end = rel_path.find('/', 4);
    if (end != std::string::npos) return rel_path.substr(4, end - 4);
  }
  return "top";  // bench/, tests/, examples/, tools/ sit above every module
}

// Reachability closure of the declared DAG; throws on a declared cycle.
std::map<std::string, std::set<std::string>> dag_closure(
    const std::map<std::string, std::vector<std::string>>& dag) {
  std::map<std::string, std::set<std::string>> closure;
  std::map<std::string, int> state;  // 0 new, 1 visiting, 2 done
  struct Walk {
    const std::map<std::string, std::vector<std::string>>& dag;
    std::map<std::string, std::set<std::string>>& closure;
    std::map<std::string, int>& state;
    void operator()(const std::string& m) {
      if (state[m] == 2) return;
      if (state[m] == 1)
        throw std::runtime_error("declared module DAG has a cycle through '" +
                                 m + "'");
      state[m] = 1;
      auto it = dag.find(m);
      if (it != dag.end()) {
        for (const auto& dep : it->second) {
          if (dag.find(dep) == dag.end())
            throw std::runtime_error("declared DAG names unknown module '" +
                                     dep + "' (dep of '" + m + "')");
          (*this)(dep);
          closure[m].insert(dep);
          const auto& sub = closure[dep];
          closure[m].insert(sub.begin(), sub.end());
        }
      }
      state[m] = 2;
    }
  };
  Walk walk{dag, closure, state};
  for (const auto& [m, deps] : dag) walk(m);
  return closure;
}

// ntco include target on a raw line, or "" — raw because the include path
// is a string/angle literal and the stripper blanks both.
std::string ntco_include(const std::string& raw) {
  // Only a real preprocessor directive counts: '#' must be the first
  // non-space character, so prose like `every #include <ntco/...> edge`
  // in a doc comment does not register an edge.
  std::size_t first = 0;
  while (first < raw.size() &&
         std::isspace(static_cast<unsigned char>(raw[first])) != 0)
    ++first;
  if (first >= raw.size() || raw[first] != '#') return "";
  std::size_t pos = raw.find("#include", first);
  if (pos != first) return "";
  pos = raw.find("ntco/", pos);
  if (pos == std::string::npos) return "";
  const std::size_t end = raw.find('/', pos + 5);
  if (end == std::string::npos) return "";
  return raw.substr(pos + 5, end - pos - 5);
}

// ---------------------------------------------------------------------------
// Suppression directives.

struct Directive {
  int line;            // 1-based line it sits on
  std::set<Rule> rules;
  std::string rules_text;
  std::string reason;
};

Rule parse_rule(const std::string& r, bool* ok) {
  *ok = true;
  if (r == "R1") return Rule::R1;
  if (r == "R2") return Rule::R2;
  if (r == "R3") return Rule::R3;
  if (r == "R4") return Rule::R4;
  if (r == "R5") return Rule::R5;
  *ok = false;
  return Rule::Sup;
}

// The marker is assembled at runtime so this file's own sources (which the
// lint scans) never contain the directive as a contiguous literal.
const std::string& marker() {
  static const std::string m = std::string("ntco-") + "lint:";
  return m;
}

std::vector<Directive> find_directives(const std::vector<std::string>& raw,
                                       const std::string& rel_path,
                                       Report& out) {
  std::vector<Directive> dirs;
  for (std::size_t li = 0; li < raw.size(); ++li) {
    const std::string& line = raw[li];
    std::size_t pos = line.find(marker());
    if (pos == std::string::npos) continue;
    // Directives live in plain `//` comments; a marker inside a `///` doc
    // comment is documentation (like the syntax example in lint.hpp), not
    // an active suppression.
    const std::size_t doc = line.find("///");
    if (doc != std::string::npos && doc < pos) continue;
    pos += marker().size();
    while (pos < line.size() &&
           std::isspace(static_cast<unsigned char>(line[pos])) != 0)
      ++pos;
    const std::string allow_kw = "allow(";
    if (line.compare(pos, allow_kw.size(), allow_kw) != 0) continue;
    pos += allow_kw.size();
    const std::size_t close = line.find(')', pos);
    if (close == std::string::npos) continue;
    Directive d;
    d.line = static_cast<int>(li + 1);
    d.rules_text = line.substr(pos, close - pos);
    std::stringstream ss(d.rules_text);
    std::string item;
    bool all_ok = !d.rules_text.empty();
    while (std::getline(ss, item, ',')) {
      bool ok = false;
      const Rule r = parse_rule(trim(item), &ok);
      if (ok)
        d.rules.insert(r);
      else
        all_ok = false;
    }
    d.reason = trim(line.substr(close + 1));
    if (!all_ok || d.rules.empty()) {
      out.diagnostics.push_back(
          {rel_path, d.line, Rule::Sup,
           "malformed suppression: unknown rule list '" + d.rules_text + "'",
           rel_path + "|sup|bad-rules"});
      continue;
    }
    if (d.reason.empty()) {
      // Fail closed: a reasonless allow() is a diagnostic, not a licence.
      out.diagnostics.push_back(
          {rel_path, d.line, Rule::Sup,
           "suppression for (" + d.rules_text +
               ") is missing its mandatory reason",
           rel_path + "|sup|" + d.rules_text});
      continue;
    }
    dirs.push_back(std::move(d));
  }
  return dirs;
}

// ---------------------------------------------------------------------------
// File analysis.

struct Finding {
  int line;
  Rule rule;
  std::string message;
  std::string detail;  // fingerprint tail
};

void analyze_impl(const Config& cfg,
                  const std::map<std::string, std::set<std::string>>& closure,
                  const std::string& rel_path, const std::string& contents,
                  Report& out) {
  const std::vector<std::string> raw = split_lines(contents);
  const std::vector<std::string> code = strip_code(raw);
  const std::set<std::string> uvars = unordered_vars(code);
  const std::string mod = module_of(rel_path);

  std::vector<Directive> dirs = find_directives(raw, rel_path, out);
  std::vector<Finding> findings;

  const bool r1_allowed = starts_with_any(rel_path, cfg.r1_allow);
  const bool r3_allowed = starts_with_any(rel_path, cfg.r3_allow);

  for (std::size_t li = 0; li < code.size(); ++li) {
    const std::string& s = code[li];
    const int line = static_cast<int>(li + 1);
    std::size_t at = 0;

    if (!r1_allowed) {
      for (const Token& t : kR1Tokens) {
        if (match_token(s, t, &at)) {
          findings.push_back({line, Rule::R1,
                              std::string("nondeterminism source '") + t.text +
                                  "' — route randomness through ntco::Rng "
                                  "and time through sim::Simulator::now()",
                              t.text});
          break;  // one R1 per line is enough signal
        }
      }
    }

    if (!r3_allowed) {
      for (const Token& t : kR3Tokens) {
        if (match_token(s, t, &at)) {
          findings.push_back({line, Rule::R3,
                              std::string("threading primitive '") + t.text +
                                  "' outside src/fleet/ — the fleet layer "
                                  "owns all concurrency",
                              t.text});
          break;
        }
      }
    }

    // R2: range-for over an unordered container, or an unordered
    // container's .begin()/.cbegin() inside a for-loop header. Sorted
    // extraction (copy out + sort, outside a for header) stays legal.
    if (!uvars.empty()) {
      const std::size_t fpos = s.find("for");
      const bool for_header =
          fpos != std::string::npos && left_ok(s, fpos) &&
          !(fpos + 3 < s.size() && is_ident(s[fpos + 3]));
      if (for_header) {
        const std::size_t open = s.find('(', fpos);
        // The range-for separator is the first ':' that is not part of a
        // '::' qualifier (e.g. `for (const std::string& k : keys)`).
        std::size_t colon = std::string::npos;
        for (std::size_t ci = fpos; ci < s.size(); ++ci) {
          if (s[ci] != ':') continue;
          if (ci + 1 < s.size() && s[ci + 1] == ':') {
            ++ci;  // skip both chars of '::'
            continue;
          }
          if (ci > 0 && s[ci - 1] == ':') continue;
          colon = ci;
          break;
        }
        bool flagged = false;
        if (open != std::string::npos && colon != std::string::npos &&
            colon > open) {
          std::size_t close = s.find_first_of(")", colon);
          const std::string expr = s.substr(
              colon + 1, (close == std::string::npos ? s.size() : close) -
                             colon - 1);
          const std::string id = trailing_ident(expr);
          if (uvars.count(id) != 0) {
            findings.push_back(
                {line, Rule::R2,
                 "iteration over unordered container '" + id +
                     "' — hash order is implementation-defined; extract "
                     "and sort first",
                 "range-for:" + id});
            flagged = true;
          }
        }
        if (!flagged) {
          for (const auto& v : uvars) {
            const std::string b1 = v + ".begin(";
            const std::string b2 = v + ".cbegin(";
            std::size_t bpos = s.find(b1, fpos);
            if (bpos == std::string::npos) bpos = s.find(b2, fpos);
            if (bpos != std::string::npos && left_ok(s, bpos)) {
              findings.push_back(
                  {line, Rule::R2,
                   "iterator loop over unordered container '" + v +
                       "' — hash order is implementation-defined",
                   "iter-loop:" + v});
              break;
            }
          }
        }
      }

      // R5: `+=` whose right-hand side reads out of an unordered
      // container; accumulation order then follows hash order.
      const std::size_t plus = s.find("+=");
      if (plus != std::string::npos) {
        const std::string rhs = s.substr(plus + 2);
        for (const auto& v : uvars) {
          std::size_t vp = 0;
          bool hit = false;
          while ((vp = rhs.find(v, vp)) != std::string::npos) {
            const std::size_t e = vp + v.size();
            if (left_ok(rhs, vp) && e < rhs.size() &&
                (rhs[e] == '[' || rhs.compare(e, 4, ".at(") == 0)) {
              hit = true;
              break;
            }
            vp = e;
          }
          if (hit) {
            findings.push_back(
                {line, Rule::R5,
                 "accumulating '" + v +
                     "' lookups with += — unordered visitation order makes "
                     "float sums run-dependent; accumulate in shard order",
                 v});
            break;
          }
        }
      }
    }

    // R4: every ntco include must follow the declared module DAG.
    const std::string target = ntco_include(raw[li]);
    if (!target.empty() && mod != "top" && target != mod) {
      const auto mod_it = closure.find(mod);
      const bool known_mod = cfg.dag.find(mod) != cfg.dag.end();
      const bool known_target = cfg.dag.find(target) != cfg.dag.end();
      if (!known_mod || !known_target) {
        findings.push_back({line, Rule::R4,
                            "include edge " + mod + " -> " + target +
                                " involves a module absent from the declared "
                                "DAG — declare it in the layering config",
                            "unknown:" + mod + "->" + target});
      } else if (mod_it == closure.end() ||
                 mod_it->second.count(target) == 0) {
        findings.push_back({line, Rule::R4,
                            "layering violation: " + mod + " -> " + target +
                                " is a back-edge of the declared module DAG",
                            "edge:" + mod + "->" + target});
      }
    }
  }

  // Apply suppressions: a directive covers its own line and the next one.
  for (const Finding& f : findings) {
    const Directive* hit = nullptr;
    for (const Directive& d : dirs) {
      if ((f.line == d.line || f.line == d.line + 1) &&
          d.rules.count(f.rule) != 0) {
        hit = &d;
        break;
      }
    }
    if (hit != nullptr) continue;
    out.diagnostics.push_back({rel_path, f.line, f.rule, f.message,
                               rel_path + "|" + rule_name(f.rule) + "|" +
                                   f.detail});
  }
  for (const Directive& d : dirs)
    out.suppressions.push_back({rel_path, d.line, d.rules_text, d.reason});
}

std::string json_escape(const std::string& s) {
  std::string o;
  o.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': o += "\\\""; break;
      case '\\': o += "\\\\"; break;
      case '\n': o += "\\n"; break;
      case '\t': o += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          o += buf;
        } else {
          o += c;
        }
    }
  }
  return o;
}

}  // namespace

const char* rule_name(Rule r) {
  switch (r) {
    case Rule::R1: return "R1";
    case Rule::R2: return "R2";
    case Rule::R3: return "R3";
    case Rule::R4: return "R4";
    case Rule::R5: return "R5";
    case Rule::Sup: break;
  }
  return "sup";
}

Config default_config(std::string root) {
  Config cfg;
  cfg.root = std::move(root);
  // Declared layering, bottom-up (see DESIGN.md "Static analysis &
  // determinism contract"): an include is legal iff its target is
  // reachable from the includer through these direct edges.
  cfg.dag = {
      {"common", {}},
      {"stats", {"common"}},
      {"fleet", {"common"}},
      {"device", {"common"}},
      {"app", {"common"}},
      {"lint", {}},
      {"obs", {"stats"}},
      {"sim", {"obs"}},
      {"net", {"obs"}},
      {"fabric", {"sim", "net", "common", "obs"}},
      {"serverless", {"sim"}},
      {"edgesim", {"sim"}},
      {"profile", {"app", "stats"}},
      {"partition", {"app", "device"}},
      {"sched", {"serverless", "net", "device", "stats"}},
      {"alloc", {"serverless"}},
      {"core", {"alloc", "partition", "net", "app", "device"}},
      {"broker", {"core", "sched", "obs"}},
      {"continuum",
       {"serverless", "edgesim", "net", "fabric", "sim", "core", "obs",
        "common"}},
      {"cicd", {"core", "profile"}},
  };
  return cfg;
}

void analyze_source(const Config& cfg, const std::string& rel_path,
                    const std::string& contents, Report& out) {
  const auto closure = dag_closure(cfg.dag);
  analyze_impl(cfg, closure, rel_path, contents, out);
  ++out.files_scanned;
}

Report run(const Config& cfg) {
  const auto closure = dag_closure(cfg.dag);
  Report rep;

  const std::set<std::string> exts{".hpp", ".cpp", ".h",
                                   ".cc",  ".hxx", ".cxx"};
  std::vector<fs::path> files;
  for (const auto& r : cfg.roots) {
    const fs::path base = fs::path(cfg.root) / r;
    if (fs::is_regular_file(base)) {
      files.push_back(base);
    } else if (fs::is_directory(base)) {
      for (const auto& e : fs::recursive_directory_iterator(base))
        if (e.is_regular_file() &&
            exts.count(e.path().extension().string()) != 0)
          files.push_back(e.path());
    }
  }
  std::sort(files.begin(), files.end());  // deterministic diagnostic order

  for (const fs::path& p : files) {
    std::string rel = fs::relative(p, cfg.root).generic_string();
    if (starts_with_any(rel, cfg.exclude)) continue;
    std::ifstream in(p, std::ios::binary);
    if (!in) continue;
    std::ostringstream ss;
    ss << in.rdbuf();
    analyze_impl(cfg, closure, rel, ss.str(), rep);
    ++rep.files_scanned;
  }
  return rep;
}

Baseline Baseline::from_string(const std::string& text) {
  Baseline b;
  for (const std::string& line : split_lines(text)) {
    const std::string t = trim(line);
    if (t.empty() || t[0] == '#') continue;
    ++b.counts_[t];
  }
  return b;
}

Baseline Baseline::from_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read baseline file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return from_string(ss.str());
}

std::vector<Diagnostic> Baseline::filter_new(
    const std::vector<Diagnostic>& all) const {
  std::map<std::string, int> budget = counts_;
  std::vector<Diagnostic> fresh;
  for (const Diagnostic& d : all) {
    auto it = budget.find(d.fingerprint);
    if (it != budget.end() && it->second > 0)
      --it->second;  // absorbed by pre-existing debt
    else
      fresh.push_back(d);
  }
  return fresh;
}

std::string Baseline::to_text(const std::vector<Diagnostic>& all) {
  std::vector<std::string> fps;
  fps.reserve(all.size());
  for (const Diagnostic& d : all) fps.push_back(d.fingerprint);
  std::sort(fps.begin(), fps.end());
  std::string out =
      "# ntco-lint baseline: one fingerprint (file|rule|detail) per line.\n"
      "# Entries absorb matching pre-existing diagnostics; new debt fails.\n"
      "# Regenerate with: ntco-lint --write-baseline <this file>\n";
  for (const auto& f : fps) {
    out += f;
    out += '\n';
  }
  return out;
}

std::size_t Baseline::size() const {
  std::size_t n = 0;
  for (const auto& [fp, c] : counts_) n += static_cast<std::size_t>(c);
  return n;
}

std::string to_json(const Report& report, const std::vector<Diagnostic>& fresh) {
  std::set<const Diagnostic*> fresh_set;
  // Identify freshness positionally by fingerprint multiset membership.
  std::map<std::string, int> fresh_counts;
  for (const Diagnostic& d : fresh) ++fresh_counts[d.fingerprint];

  std::ostringstream o;
  o << "{\n";
  o << "  \"files_scanned\": " << report.files_scanned << ",\n";
  o << "  \"diagnostics_total\": " << report.diagnostics.size() << ",\n";
  o << "  \"diagnostics_new\": " << fresh.size() << ",\n";
  o << "  \"diagnostics_baselined\": "
    << report.diagnostics.size() - fresh.size() << ",\n";
  o << "  \"suppressions\": " << report.suppressions.size() << ",\n";
  o << "  \"diagnostics\": [";
  for (std::size_t i = 0; i < report.diagnostics.size(); ++i) {
    const Diagnostic& d = report.diagnostics[i];
    bool is_new = false;
    auto it = fresh_counts.find(d.fingerprint);
    if (it != fresh_counts.end() && it->second > 0) {
      --it->second;
      is_new = true;
    }
    o << (i == 0 ? "\n" : ",\n");
    o << "    {\"file\": \"" << json_escape(d.file) << "\", \"line\": "
      << d.line << ", \"rule\": \"" << rule_name(d.rule)
      << "\", \"new\": " << (is_new ? "true" : "false")
      << ", \"fingerprint\": \"" << json_escape(d.fingerprint)
      << "\", \"message\": \"" << json_escape(d.message) << "\"}";
  }
  o << (report.diagnostics.empty() ? "],\n" : "\n  ],\n");
  o << "  \"suppression_list\": [";
  for (std::size_t i = 0; i < report.suppressions.size(); ++i) {
    const Suppression& s = report.suppressions[i];
    o << (i == 0 ? "\n" : ",\n");
    o << "    {\"file\": \"" << json_escape(s.file) << "\", \"line\": "
      << s.line << ", \"rules\": \"" << json_escape(s.rules)
      << "\", \"reason\": \"" << json_escape(s.reason) << "\"}";
  }
  o << (report.suppressions.empty() ? "]\n" : "\n  ]\n");
  o << "}\n";
  return o.str();
}

}  // namespace ntco::lint
