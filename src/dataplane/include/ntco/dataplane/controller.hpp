#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

/// \file controller.hpp
/// NFVCtrl-style core orchestration policy for the dataplane.
///
/// The CoreController decides, between epochs, how many workers the engine
/// should keep live. Its inputs are *measured* signals — mean request-ring
/// occupancy over the epoch and the undispatched backlog — and its output
/// is a worker-count target the engine realises by parking or unparking
/// threads. Like NFVCtrl's core map, it keeps a per-worker `core_liveness`
/// array: liveness[w] counts the epochs worker w was live, which is both
/// the scheduling record benches report ("per-core occupancy") and the
/// fairness signal for future placement policies.
///
/// Policy (deliberately boring, hysteresis over cleverness):
///   - scale UP by one worker after `sustain_epochs` consecutive epochs
///     with mean occupancy >= scale_up_occupancy *and* remaining backlog —
///     a transient burst never grabs a core;
///   - scale DOWN by one worker after `idle_epochs` consecutive epochs
///     with mean occupancy <= scale_down_occupancy — a brief lull never
///     drops one;
///   - always within [min_workers, pool] and never more workers than
///     remaining shards can use.
///
/// Determinism note: occupancy is timing-dependent, so the controller may
/// only ever influence *where and how fast* shards run, never their
/// results. The engine guarantees that by construction (epoch membership
/// and merge order are pure functions of the shard index), so the
/// controller is free to be as reactive as it likes.

namespace ntco::dataplane {

/// Tuning knobs. Defaults favour stability on small epochs.
struct ControllerConfig {
  std::size_t min_workers = 1;
  double scale_up_occupancy = 0.75;   ///< mean ring fill that counts as backlog
  double scale_down_occupancy = 0.05; ///< mean ring fill that counts as idle
  std::size_t sustain_epochs = 2;     ///< backlogged epochs before acquiring
  std::size_t idle_epochs = 4;        ///< idle epochs before releasing
  bool enabled = true;                ///< false: hold the initial worker count
};

/// Lifetime scaling record.
struct ControllerStats {
  std::uint64_t epochs = 0;
  std::uint64_t scale_ups = 0;
  std::uint64_t scale_downs = 0;
};

/// Epoch-grained worker-count policy. Not thread-safe; the engine's
/// orchestrator thread owns it.
class CoreController {
 public:
  /// `pool` is the engine's spawned worker count (the hard ceiling).
  CoreController(ControllerConfig cfg, std::size_t pool);

  /// One epoch has drained. `active` workers were live, the epoch's mean
  /// request-ring occupancy was `mean_occupancy` (in [0,1]), and `pending`
  /// shards remain undispatched. Returns the worker count for the next
  /// epoch; updates liveness and scaling stats.
  [[nodiscard]] std::size_t plan(std::size_t active, double mean_occupancy,
                                 std::size_t pending);

  /// Epochs each worker index has been live (`core_liveness`).
  [[nodiscard]] const std::vector<std::uint64_t>& liveness() const {
    return liveness_;
  }
  [[nodiscard]] const ControllerStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t pool() const { return liveness_.size(); }

 private:
  ControllerConfig cfg_;
  std::vector<std::uint64_t> liveness_;
  ControllerStats stats_;
  std::size_t backlog_streak_ = 0;
  std::size_t idle_streak_ = 0;
};

}  // namespace ntco::dataplane
