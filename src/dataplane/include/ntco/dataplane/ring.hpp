#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "ntco/common/contracts.hpp"

/// \file ring.hpp
/// Lock-free software queues for the serving dataplane — the `llring`-style
/// building block every worker hands work through.
///
/// Two variants, both bounded, power-of-two sized, and mutex-free:
///
///   Ring<T>      single-producer / single-consumer. One cache line per
///                role: the producer owns `tail_` and a cached copy of the
///                consumer's `head_`; the consumer owns `head_` and a cached
///                copy of `tail_`. The cached copies are refreshed (with an
///                acquire load) only when the ring *looks* full/empty, so in
///                steady state each side touches exclusively its own line —
///                no ping-pong, no fences beyond one release store per
///                operation. Batched push_n/pop_n amortise even that store
///                across a whole burst.
///
///   MpscRing<T>  multi-producer / single-consumer — the completion
///                variant. Producers claim slots with a CAS on `tail_`; a
///                per-cell sequence number (Vyukov's bounded-queue scheme)
///                tells the consumer when a claimed cell's payload is
///                actually published, so a stalled producer never lets a
///                later completion be consumed early.
///
/// The release store on the producer side and the acquire load on the
/// consumer side form the happens-before edge the dataplane's determinism
/// contract leans on: everything a worker wrote before pushing a completion
/// (its shard's result slot, its local metrics shard) is visible to the
/// reducer that pops it. Payloads should be small trivially copyable
/// structs (the dataplane moves shard *indices*, never closures).
///
/// Capacity must be a power of two (index arithmetic is a mask, and the
/// monotonically increasing 64-bit positions never wrap in practice).
/// Construction allocates the slot array once; after that neither variant
/// allocates, which is why this whole file sits under the lint R6
/// zero-allocation gate (tools/lint_hotpath.txt).

namespace ntco {

namespace dataplane_detail {
inline constexpr std::size_t kCacheLine = 64;

[[nodiscard]] constexpr bool is_pow2(std::size_t v) {
  return v >= 2 && (v & (v - 1)) == 0;
}
}  // namespace dataplane_detail

/// Bounded lock-free SPSC ring. Exactly one thread may push and exactly one
/// thread may pop over the ring's lifetime at any given moment (the roles
/// may migrate between runs with external synchronisation, e.g. a join).
template <class T>
class Ring {
 public:
  /// `capacity` must be a power of two >= 2.
  explicit Ring(std::size_t capacity) : mask_(capacity - 1), slots_(capacity) {
    NTCO_EXPECTS(dataplane_detail::is_pow2(capacity));
  }

  Ring(const Ring&) = delete;
  Ring& operator=(const Ring&) = delete;

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

  /// Producer side. Returns false when the ring is full.
  [[nodiscard]] bool try_push(const T& v) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ > mask_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ > mask_) return false;
    }
    slots_[static_cast<std::size_t>(tail) & mask_] = v;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Producer side, batched: pushes up to `n` items from `items`, returns
  /// how many fit. One release store publishes the whole burst.
  [[nodiscard]] std::size_t push_n(const T* items, std::size_t n) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    std::uint64_t free = capacity() - (tail - cached_head_);
    if (free < n) {
      cached_head_ = head_.load(std::memory_order_acquire);
      free = capacity() - (tail - cached_head_);
    }
    const std::size_t take = n < free ? n : static_cast<std::size_t>(free);
    for (std::size_t i = 0; i < take; ++i)
      slots_[static_cast<std::size_t>(tail + i) & mask_] = items[i];
    if (take != 0) tail_.store(tail + take, std::memory_order_release);
    return take;
  }

  /// Consumer side. Returns false when the ring is empty.
  [[nodiscard]] bool try_pop(T& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;
    }
    out = std::move(slots_[static_cast<std::size_t>(head) & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side, batched: pops up to `max_n` items into `out`, returns
  /// how many were available. One release store retires the whole burst.
  [[nodiscard]] std::size_t pop_n(T* out, std::size_t max_n) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    std::uint64_t avail = cached_tail_ - head;
    if (avail < max_n) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      avail = cached_tail_ - head;
    }
    const std::size_t take =
        max_n < avail ? max_n : static_cast<std::size_t>(avail);
    for (std::size_t i = 0; i < take; ++i)
      out[i] = std::move(slots_[static_cast<std::size_t>(head + i) & mask_]);
    if (take != 0) head_.store(head + take, std::memory_order_release);
    return take;
  }

  /// Occupancy snapshot, callable from any thread. Racy by nature (the
  /// controller's load signal, never a correctness input).
  [[nodiscard]] std::size_t size_approx() const {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? static_cast<std::size_t>(tail - head) : 0;
  }

  [[nodiscard]] bool empty_approx() const { return size_approx() == 0; }

 private:
  std::size_t mask_;
  std::vector<T> slots_;
  // Consumer's cache line: its own index plus its stale view of the tail.
  alignas(dataplane_detail::kCacheLine) std::atomic<std::uint64_t> head_{0};
  std::uint64_t cached_tail_ = 0;
  // Producer's cache line: its own index plus its stale view of the head.
  alignas(dataplane_detail::kCacheLine) std::atomic<std::uint64_t> tail_{0};
  std::uint64_t cached_head_ = 0;
};

/// Bounded lock-free MPSC ring — the completion-queue variant: any number
/// of workers push, one reducer pops. Per-cell sequence numbers make a
/// claimed-but-unpublished cell invisible to the consumer.
template <class T>
class MpscRing {
 public:
  /// `capacity` must be a power of two >= 2.
  explicit MpscRing(std::size_t capacity)
      : mask_(capacity - 1), cells_(capacity) {
    NTCO_EXPECTS(dataplane_detail::is_pow2(capacity));
    for (std::size_t i = 0; i < capacity; ++i)
      cells_[i].seq.store(i, std::memory_order_relaxed);
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

  /// Any producer. Returns false when the ring is full.
  [[nodiscard]] bool try_push(const T& v) {
    std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[static_cast<std::size_t>(pos) & mask_];
      const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
      const std::int64_t dif =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          cell.value = v;
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // full: the cell is still a lap behind
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// The single consumer. Returns false when no published item is ready.
  [[nodiscard]] bool try_pop(T& out) {
    const std::uint64_t pos = head_.load(std::memory_order_relaxed);
    Cell& cell = cells_[static_cast<std::size_t>(pos) & mask_];
    const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
    if (seq != pos + 1) return false;  // claimed but not yet published, or empty
    out = std::move(cell.value);
    cell.seq.store(pos + capacity(), std::memory_order_release);
    head_.store(pos + 1, std::memory_order_relaxed);
    return true;
  }

  [[nodiscard]] std::size_t size_approx() const {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? static_cast<std::size_t>(tail - head) : 0;
  }

 private:
  struct Cell {
    std::atomic<std::uint64_t> seq{0};
    T value{};
  };

  std::size_t mask_;
  std::vector<Cell> cells_;
  alignas(dataplane_detail::kCacheLine) std::atomic<std::uint64_t> head_{0};
  alignas(dataplane_detail::kCacheLine) std::atomic<std::uint64_t> tail_{0};
};

}  // namespace ntco
