#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>

#include "ntco/common/rng.hpp"
#include "ntco/dataplane/ring.hpp"

/// \file worker.hpp
/// Per-core worker state and the worker loop — the dataplane's hot path.
///
/// Each worker owns one cache-line-aligned WorkerState: its private SPSC
/// request ring (the orchestrator is the only producer, the worker the only
/// consumer), a worker-keyed Rng substream (idle-backoff jitter only —
/// never results; shard results draw from the *shard*-keyed substream the
/// body materialises per task, so they cannot depend on which core ran
/// them), and a local metrics shard (items/poll counters the worker alone
/// writes). Workers therefore never share a mutable cache line; the only
/// cross-core traffic in steady state is the rings themselves.
///
/// The loop is mode-driven (Parked / Active / Stopped, an NFVCore-style
/// `core_state`): an Active worker pops Tasks — plain shard indices stamped
/// with their epoch, never closures — runs the run-wide body function
/// pointer, and pushes a Completion into the shared MPSC completion ring.
/// That push's release store is the happens-before edge publishing
/// everything the shard body wrote (its result slot, its trace shard) to
/// the reducer that pops the completion. A Parked worker sleeps on the
/// engine's park condvar (off the hot path by definition); the
/// CoreController acquires and releases workers between epochs only, so a
/// parked worker's request ring is always empty.
///
/// This file is enrolled in tools/lint_hotpath.txt: nothing here may
/// allocate (lint R6).

namespace ntco::dataplane {

/// One unit of work: the shard to run, stamped with the epoch that owns it.
/// Workers process exactly the tasks stamped for the epoch being drained —
/// the orchestrator never dispatches epoch k+1 before epoch k's barrier.
struct Task {
  std::uint64_t shard = 0;
  std::uint64_t epoch = 0;
};

/// Completion record a worker publishes after running a task.
struct Completion {
  std::uint64_t shard = 0;
  std::uint32_t worker = 0;
  std::uint32_t epoch_lo = 0;  ///< low 32 bits of the task's epoch stamp
};

/// Worker lifecycle (NFVCore-style core_state). Transitions are made by
/// the orchestrator under the park mutex; workers only read.
enum class WorkerMode : int { Parked = 0, Active = 1, Stopped = 2 };

/// The run-wide callback a worker invokes per task. A raw function pointer
/// plus context — never a std::function — so dispatch stays allocation-free.
using ShardFn = void (*)(void* ctx, std::size_t shard);

/// State shared by every worker of one engine: the body to run, the MPSC
/// completion ring, and the park channel.
struct EngineShared {
  explicit EngineShared(std::size_t completion_capacity)
      : completions(completion_capacity) {}

  ShardFn body = nullptr;
  void* body_ctx = nullptr;
  MpscRing<Completion> completions;
  std::mutex park_mu;
  std::condition_variable park_cv;
};

/// Per-core state. alignas keeps neighbouring workers off each other's
/// cache lines; every field is written by exactly one role (worker or
/// orchestrator), and the cross-thread-read counters are relaxed atomics.
struct alignas(dataplane_detail::kCacheLine) WorkerState {
  WorkerState(std::uint32_t worker_index, std::size_t ring_capacity,
              std::uint64_t seed)
      : index(worker_index),
        requests(ring_capacity),
        rng(Rng::stream(seed, worker_index)) {}

  const std::uint32_t index;
  Ring<Task> requests;  ///< orchestrator -> this worker (SPSC)
  std::atomic<int> mode{static_cast<int>(WorkerMode::Parked)};

  // Local metrics shard: the owning worker is the only writer.
  std::atomic<std::uint64_t> items{0};       ///< tasks completed (lifetime)
  std::atomic<std::uint64_t> idle_polls{0};  ///< empty-ring polls (lifetime)

  Rng rng;  ///< worker-keyed substream: backoff jitter only, never results
};

/// One architectural pause — the polite spin primitive for ring waits.
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// The worker loop. Runs until mode becomes Stopped. `w` must be owned by
/// exactly this thread for the loop's lifetime.
inline void worker_loop(WorkerState& w, EngineShared& sh) {
  constexpr std::uint32_t kSpinsBeforeYield = 64;
  std::uint32_t backoff = 0;
  for (;;) {
    const auto mode =
        static_cast<WorkerMode>(w.mode.load(std::memory_order_acquire));
    if (mode == WorkerMode::Stopped) return;
    if (mode == WorkerMode::Parked) {
      std::unique_lock<std::mutex> lock(sh.park_mu);
      sh.park_cv.wait(lock, [&w] {
        return w.mode.load(std::memory_order_acquire) !=
               static_cast<int>(WorkerMode::Parked);
      });
      backoff = 0;
      continue;
    }
    Task t;
    if (w.requests.try_pop(t)) {
      sh.body(sh.body_ctx, static_cast<std::size_t>(t.shard));
      w.items.fetch_add(1, std::memory_order_relaxed);
      const Completion done{t.shard, w.index,
                            static_cast<std::uint32_t>(t.epoch)};
      // The completion ring is sized to hold a whole epoch, so this push
      // succeeds on the first try in steady state; the spin is a safety
      // net, not a wait loop.
      while (!sh.completions.try_push(done)) cpu_relax();
      backoff = 0;
    } else {
      w.idle_polls.fetch_add(1, std::memory_order_relaxed);
      if (backoff < kSpinsBeforeYield) {
        ++backoff;
        // Jittered bounded spin (worker-keyed substream) so siblings do
        // not hammer the park/ring lines in lockstep.
        const std::int64_t spins =
            w.rng.uniform_int(1, static_cast<std::int64_t>(backoff));
        for (std::int64_t i = 0; i < spins; ++i) cpu_relax();
      } else {
        std::this_thread::yield();
      }
    }
  }
}

}  // namespace ntco::dataplane
