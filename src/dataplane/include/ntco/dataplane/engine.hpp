#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <thread>
#include <vector>

#include "ntco/dataplane/backpressure.hpp"
#include "ntco/dataplane/controller.hpp"
#include "ntco/dataplane/worker.hpp"
#include "ntco/obs/metrics.hpp"
#include "ntco/obs/trace.hpp"
#include "ntco/stats/accumulator.hpp"

/// \file engine.hpp
/// The serving dataplane: per-core SPSC request rings, an MPSC completion
/// ring, a deterministic epoch barrier, and NFVCtrl-style dynamic worker
/// scaling.
///
/// ## Epoch protocol
///
/// A run over `shards` shard indices proceeds in epochs of fixed width E
/// (EngineConfig::epoch_width): epoch k owns exactly the contiguous shard
/// range [k*E, min((k+1)*E, shards)). Membership is a pure function of the
/// shard index — never of the worker count, ring occupancy, or timing — so
/// the reducer can merge epoch ranges in ascending order and reproduce the
/// global shard order at any thread count. Per epoch the orchestrator:
///
///   1. stamps each shard of the range with the epoch and round-robins the
///      Tasks over the live workers' request rings (batched pushes, one
///      release store per burst);
///   2. drains exactly `range` Completions from the MPSC ring — the epoch
///      barrier. The pop's acquire pairs with the worker's release, so
///      every shard result is visible before the barrier opens;
///   3. invokes the caller's epoch_done callback with the *shard range*
///      (not the completion order), which merges results in shard order —
///      this is why t1-vs-tN artifacts stay byte-identical;
///   4. feeds the epoch's measured mean ring occupancy to the
///      CoreController and parks/unparks workers to realise its plan.
///
/// Timing-derived signals (occupancy, liveness) steer only *capacity* —
/// worker counts, admission throttling via pressure() — never results.
///
/// ## Memory layout
///
/// WorkerStates live in a deque (stable addresses, no moves — they hold
/// atomics) and are each cache-line-aligned; the request ring inside keeps
/// producer and consumer indices on separate lines. The shared completion
/// ring is sized to hold a whole epoch so a worker's completion push never
/// blocks within an epoch.
///
/// Threads are spawned parked at construction and reused across run()
/// calls; run() itself is synchronous and single-orchestrator (not
/// re-entrant).

namespace ntco::dataplane {

/// Epoch-completion callback: the shard range [begin, end) has drained and
/// every result in it is visible. Runs on the orchestrator thread.
using EpochFn = void (*)(void* ctx, std::size_t begin, std::size_t end);

struct EngineConfig {
  std::size_t workers = 1;        ///< threads spawned (the controller ceiling)
  std::size_t ring_capacity = 64; ///< per-worker request ring (rounded to 2^n)
  std::size_t epoch_width = 64;   ///< shards per epoch — fixed, NEVER derived
                                  ///< from the worker count (determinism)
  std::uint64_t seed = 0x9e3779b9; ///< worker backoff substream seed
  ControllerConfig controller;
};

/// What one run() observed. Worker-indexed vectors have pool_size() slots.
struct EngineRunStats {
  std::uint64_t epochs = 0;
  std::uint64_t items = 0;
  std::uint64_t scale_ups = 0;
  std::uint64_t scale_downs = 0;
  double mean_occupancy = 0.0;  ///< mean request-ring fill over the run
  std::size_t final_workers = 0;
  std::vector<std::uint64_t> items_per_worker;
  std::vector<std::uint64_t> core_liveness;  ///< epochs each worker was live
};

/// The dataplane engine. Owns the worker threads; one orchestrator thread
/// (the caller of run()) dispatches and reduces.
class Engine final : public BackpressureSource {
 public:
  explicit Engine(EngineConfig cfg);
  ~Engine() override;

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Runs `body(body_ctx, s)` for every shard s in [0, shards), workers in
  /// parallel, epochs in order. `epoch_done` (optional) fires after each
  /// epoch's barrier with the drained shard range — the streaming-reduce
  /// hook. Blocks until all shards have completed; workers end parked.
  void run(std::size_t shards, ShardFn body, void* body_ctx,
           EpochFn epoch_done = nullptr, void* epoch_ctx = nullptr);

  /// Observability attach point (optional; null detaches). Instruments and
  /// event names are listed in DESIGN.md ("Observability"). Trace and
  /// scaling telemetry are timing-dependent by design — attach only
  /// wall-clock-tolerant sinks, never artifact-producing ones.
  void attach_observer(obs::TraceSink* trace, obs::MetricsRegistry* metrics);

  [[nodiscard]] const EngineRunStats& last_run() const { return stats_; }
  [[nodiscard]] std::size_t pool_size() const { return workers_.size(); }

  /// BackpressureSource: mean occupancy of the live workers' request
  /// rings, in [0, 1]. Safe from any thread; 0 while no run is active.
  [[nodiscard]] double pressure() const override;

 private:
  void unpark(std::size_t begin, std::size_t end);
  void park(std::size_t begin, std::size_t end);
  [[nodiscard]] double occupancy_snapshot(std::size_t active) const;

  EngineConfig cfg_;
  EngineShared shared_;
  std::deque<WorkerState> workers_;  // stable addresses; atomics never move
  std::vector<std::thread> threads_;
  std::atomic<std::size_t> active_{0};
  EngineRunStats stats_;

  obs::TraceSink* trace_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* c_epochs_ = nullptr;
  obs::Counter* c_items_ = nullptr;
  obs::Counter* c_scale_ups_ = nullptr;
  obs::Counter* c_scale_downs_ = nullptr;
  obs::Gauge* g_active_ = nullptr;
  stats::Accumulator* s_occupancy_ = nullptr;
};

}  // namespace ntco::dataplane
