#pragma once

/// \file backpressure.hpp
/// Read-side interface to the dataplane's ring occupancy.
///
/// Upstream serving layers (the broker's admission controller) throttle on
/// *measured ring backpressure* instead of introspecting a mutex-guarded
/// queue: the dataplane publishes a single normalized pressure signal and
/// keeps its internals private. The split of responsibilities matters for
/// determinism: timing-derived pressure may steer *capacity* decisions
/// (how many requests to defer, how many cores to run), never the
/// simulated results themselves — byte-reproducible experiments wire a
/// deterministic source (a stub, or a simulated-backlog proxy) while live
/// serving wires dataplane::Engine directly.

namespace ntco::dataplane {

/// Anything that can quote instantaneous dataplane pressure.
class BackpressureSource {
 public:
  virtual ~BackpressureSource() = default;

  /// Pressure in [0, 1]: 0 = request rings idle, 1 = rings full (every
  /// enqueue would block). Callable from any thread; values are racy
  /// snapshots and must only feed throttling heuristics.
  [[nodiscard]] virtual double pressure() const = 0;
};

}  // namespace ntco::dataplane
