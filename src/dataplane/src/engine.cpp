#include "ntco/dataplane/engine.hpp"

#include <algorithm>
#include <mutex>

#include "ntco/common/contracts.hpp"
#include "ntco/common/units.hpp"

namespace ntco::dataplane {

namespace {

[[nodiscard]] std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 2;
  while (p < v) p <<= 1;
  return p;
}

// Pseudo-time for dataplane trace records: the epoch index as microseconds.
// Scaling telemetry is timing-dependent anyway; a monotone epoch clock keeps
// records ordered without touching a wall clock (lint R1).
[[nodiscard]] TimePoint epoch_time(std::uint64_t epoch) {
  return TimePoint::at(Duration::micros(static_cast<std::int64_t>(epoch)));
}

}  // namespace

Engine::Engine(EngineConfig cfg)
    : cfg_(cfg),
      shared_(round_up_pow2(std::max<std::size_t>(cfg.epoch_width, 4))) {
  NTCO_EXPECTS(cfg_.workers >= 1);
  NTCO_EXPECTS(cfg_.epoch_width >= 1);
  const std::size_t ring_cap =
      round_up_pow2(std::max<std::size_t>(cfg_.ring_capacity, 2));
  for (std::size_t i = 0; i < cfg_.workers; ++i)
    workers_.emplace_back(static_cast<std::uint32_t>(i), ring_cap, cfg_.seed);
  threads_.reserve(cfg_.workers);
  for (auto& w : workers_)
    threads_.emplace_back([this, &w] { worker_loop(w, shared_); });
}

Engine::~Engine() {
  {
    std::lock_guard<std::mutex> lock(shared_.park_mu);
    for (auto& w : workers_)
      w.mode.store(static_cast<int>(WorkerMode::Stopped),
                   std::memory_order_release);
  }
  shared_.park_cv.notify_all();
  for (auto& t : threads_) t.join();
}

void Engine::attach_observer(obs::TraceSink* trace,
                             obs::MetricsRegistry* metrics) {
  trace_ = trace;
  metrics_ = metrics;
  if (metrics_ != nullptr) {
    c_epochs_ = &metrics_->counter("dataplane.epochs");
    c_items_ = &metrics_->counter("dataplane.items");
    c_scale_ups_ = &metrics_->counter("dataplane.scale_ups");
    c_scale_downs_ = &metrics_->counter("dataplane.scale_downs");
    g_active_ = &metrics_->gauge("dataplane.workers.active");
    s_occupancy_ = &metrics_->summary("dataplane.ring.occupancy");
  } else {
    c_epochs_ = c_items_ = c_scale_ups_ = c_scale_downs_ = nullptr;
    g_active_ = nullptr;
    s_occupancy_ = nullptr;
  }
}

void Engine::unpark(std::size_t begin, std::size_t end) {
  {
    // The store must happen under the park mutex: the condvar predicate is
    // checked under the same lock, so a worker can never miss the wakeup.
    std::lock_guard<std::mutex> lock(shared_.park_mu);
    for (std::size_t w = begin; w < end; ++w)
      workers_[w].mode.store(static_cast<int>(WorkerMode::Active),
                             std::memory_order_release);
  }
  shared_.park_cv.notify_all();
}

void Engine::park(std::size_t begin, std::size_t end) {
  // Parking needs no lock: the worker observes the store on its next loop
  // iteration and goes to sleep. Callers only park between epochs, when
  // every request ring is drained, so no task is ever stranded.
  for (std::size_t w = begin; w < end; ++w)
    workers_[w].mode.store(static_cast<int>(WorkerMode::Parked),
                           std::memory_order_release);
}

double Engine::occupancy_snapshot(std::size_t active) const {
  if (active == 0) return 0.0;
  double sum = 0.0;
  for (std::size_t w = 0; w < active; ++w) {
    const WorkerState& ws = workers_[w];
    const double fill = static_cast<double>(ws.requests.size_approx()) /
                        static_cast<double>(ws.requests.capacity());
    sum += std::min(fill, 1.0);  // racy snapshot may transiently overshoot
  }
  return sum / static_cast<double>(active);
}

double Engine::pressure() const {
  const std::size_t active = active_.load(std::memory_order_acquire);
  return occupancy_snapshot(active);
}

void Engine::run(std::size_t shards, ShardFn body, void* body_ctx,
                 EpochFn epoch_done, void* epoch_ctx) {
  NTCO_EXPECTS(shards > 0);
  NTCO_EXPECTS(body != nullptr);
  shared_.body = body;
  shared_.body_ctx = body_ctx;

  const std::size_t pool = workers_.size();
  std::vector<std::uint64_t> items_before(pool, 0);
  for (std::size_t w = 0; w < pool; ++w)
    items_before[w] = workers_[w].items.load(std::memory_order_relaxed);

  CoreController controller(cfg_.controller, pool);
  std::size_t active = std::min(pool, shards);
  unpark(0, active);
  active_.store(active, std::memory_order_release);
  if (g_active_ != nullptr) g_active_->set(static_cast<double>(active));

  double run_occ_sum = 0.0;
  std::uint64_t epoch = 0;
  std::size_t next = 0;
  while (next < shards) {
    const std::size_t end = std::min(shards, next + cfg_.epoch_width);
    const std::size_t count = end - next;
    double occ_sum = 0.0;
    std::uint64_t occ_samples = 0;
    // ntco-lint: hotpath begin
    for (std::size_t s = next; s < end; ++s) {
      WorkerState& w = workers_[(s - next) % active];
      const Task task{static_cast<std::uint64_t>(s), epoch};
      // A full ring means the worker needs CPU to drain it — yield rather
      // than spin, so oversubscribed (or single-core) hosts make progress.
      while (!w.requests.try_push(task)) std::this_thread::yield();
    }
    std::size_t done = 0;
    std::uint64_t polls = 0;
    Completion completion;
    while (done < count) {
      if (shared_.completions.try_pop(completion)) {
        ++done;
      } else {
        cpu_relax();
        if ((++polls & 0xffU) == 0) {  // sample occupancy while waiting
          occ_sum += occupancy_snapshot(active);
          ++occ_samples;
          std::this_thread::yield();  // give descheduled workers the core
        }
      }
    }
    // ntco-lint: hotpath end

    // The barrier has drained: every shard in [next, end) has published.
    occ_sum += occupancy_snapshot(active);
    ++occ_samples;
    const double epoch_occ = occ_sum / static_cast<double>(occ_samples);
    run_occ_sum += epoch_occ;

    if (epoch_done != nullptr) epoch_done(epoch_ctx, next, end);

    if (trace_ != nullptr)
      obs::emit(trace_, epoch_time(epoch), "dataplane.epoch.complete",
                {{"epoch", epoch},
                 {"shards", static_cast<std::uint64_t>(count)},
                 {"workers", static_cast<std::uint64_t>(active)}});
    if (metrics_ != nullptr) {
      c_epochs_->add();
      c_items_->add(static_cast<std::uint64_t>(count));
      s_occupancy_->add(epoch_occ);
    }

    next = end;
    ++epoch;
    const std::size_t pending = shards - next;
    const std::size_t target = controller.plan(active, epoch_occ, pending);
    if (pending > 0 && target != active) {
      if (target > active) {
        unpark(active, target);
        if (c_scale_ups_ != nullptr) c_scale_ups_->add(target - active);
        if (trace_ != nullptr)
          for (std::size_t w = active; w < target; ++w)
            obs::emit(trace_, epoch_time(epoch), "dataplane.worker.acquire",
                      {{"worker", workers_[w].index},
                       {"epoch", epoch},
                       {"liveness", controller.liveness()[w]}});
      } else {
        park(target, active);
        if (c_scale_downs_ != nullptr) c_scale_downs_->add(active - target);
        if (trace_ != nullptr)
          for (std::size_t w = target; w < active; ++w)
            obs::emit(trace_, epoch_time(epoch), "dataplane.worker.release",
                      {{"worker", workers_[w].index},
                       {"epoch", epoch},
                       {"liveness", controller.liveness()[w]}});
      }
      active = target;
      active_.store(active, std::memory_order_release);
      if (g_active_ != nullptr) g_active_->set(static_cast<double>(active));
    }
  }

  park(0, active);
  active_.store(0, std::memory_order_release);

  stats_ = EngineRunStats{};
  stats_.epochs = epoch;
  stats_.items = static_cast<std::uint64_t>(shards);
  stats_.scale_ups = controller.stats().scale_ups;
  stats_.scale_downs = controller.stats().scale_downs;
  stats_.mean_occupancy =
      epoch == 0 ? 0.0 : run_occ_sum / static_cast<double>(epoch);
  stats_.final_workers = active;
  stats_.core_liveness = controller.liveness();
  stats_.items_per_worker.assign(pool, 0);
  for (std::size_t w = 0; w < pool; ++w)
    stats_.items_per_worker[w] =
        workers_[w].items.load(std::memory_order_relaxed) - items_before[w];
}

}  // namespace ntco::dataplane
