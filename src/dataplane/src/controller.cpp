#include "ntco/dataplane/controller.hpp"

#include <algorithm>

#include "ntco/common/contracts.hpp"

namespace ntco::dataplane {

CoreController::CoreController(ControllerConfig cfg, std::size_t pool)
    : cfg_(cfg), liveness_(pool, 0) {
  NTCO_EXPECTS(pool >= 1);
  NTCO_EXPECTS(cfg_.min_workers >= 1);
  NTCO_EXPECTS(cfg_.scale_down_occupancy <= cfg_.scale_up_occupancy);
}

std::size_t CoreController::plan(std::size_t active, double mean_occupancy,
                                 std::size_t pending) {
  NTCO_EXPECTS(active >= 1 && active <= pool());
  ++stats_.epochs;
  for (std::size_t w = 0; w < active; ++w) ++liveness_[w];

  std::size_t target = active;
  if (cfg_.enabled) {
    if (mean_occupancy >= cfg_.scale_up_occupancy && pending > 0) {
      ++backlog_streak_;
      idle_streak_ = 0;
      if (backlog_streak_ >= cfg_.sustain_epochs) {
        target = active + 1;
        backlog_streak_ = 0;
      }
    } else if (mean_occupancy <= cfg_.scale_down_occupancy) {
      ++idle_streak_;
      backlog_streak_ = 0;
      if (idle_streak_ >= cfg_.idle_epochs) {
        target = active - 1;
        idle_streak_ = 0;
      }
    } else {
      backlog_streak_ = 0;
      idle_streak_ = 0;
    }
  }

  const std::size_t floor = std::max<std::size_t>(cfg_.min_workers, 1);
  std::size_t ceil = pool();
  // No point holding more cores than there are shards left to run.
  if (pending > 0) ceil = std::min(ceil, pending);
  target = std::clamp(target, std::min(floor, ceil), ceil);
  if (target > active) ++stats_.scale_ups;
  if (target < active) ++stats_.scale_downs;
  return target;
}

}  // namespace ntco::dataplane
