#include "ntco/serverless/platform.hpp"

#include <algorithm>
#include <cmath>

namespace ntco::serverless {

Platform::Platform(sim::Simulator& sim, PlatformConfig cfg)
    : sim_(sim), cfg_(std::move(cfg)), rng_(cfg_.seed) {
  if (cfg_.core_speed.is_zero())
    throw ConfigError("core_speed must be positive");
  if (cfg_.full_share_memory.is_zero())
    throw ConfigError("full_share_memory must be positive");
  if (cfg_.max_vcpus <= 0.0) throw ConfigError("max_vcpus must be positive");
  if (cfg_.min_memory > cfg_.max_memory)
    throw ConfigError("min_memory exceeds max_memory");
  if (cfg_.memory_quantum.is_zero())
    throw ConfigError("memory_quantum must be positive");
  if (cfg_.account_concurrency == 0)
    throw ConfigError("account_concurrency must be positive");
  validate_price_windows(cfg_.price_windows);
  if (cfg_.spot_price_multiplier <= 0.0 || cfg_.spot_price_multiplier > 1.0)
    throw ConfigError("spot_price_multiplier must lie in (0, 1]");
  if (cfg_.spot_mean_time_to_preempt.is_negative())
    throw ConfigError("spot_mean_time_to_preempt must be non-negative");
  provisioned_accrued_until_ = sim_.now();
}

FunctionId Platform::deploy(FunctionSpec spec) {
  if (spec.name.empty()) throw ConfigError("function name must be non-empty");
  if (spec.memory < cfg_.min_memory || spec.memory > cfg_.max_memory)
    throw ConfigError("function '" + spec.name +
                      "' memory outside provider limits");
  if (spec.memory.count_bytes() % cfg_.memory_quantum.count_bytes() != 0)
    throw ConfigError("function '" + spec.name +
                      "' memory not quantum-aligned; use quantize_memory()");
  if (spec.parallel_fraction < 0.0 || spec.parallel_fraction > 1.0)
    throw ConfigError("function '" + spec.name +
                      "' parallel_fraction outside [0, 1]");
  fns_.push_back(Function{std::move(spec), {}, 0, 0});
  return static_cast<FunctionId>(fns_.size() - 1);
}

void Platform::redeploy(FunctionId id, FunctionSpec spec) {
  NTCO_EXPECTS(id < fns_.size());
  if (spec.memory < cfg_.min_memory || spec.memory > cfg_.max_memory ||
      spec.memory.count_bytes() % cfg_.memory_quantum.count_bytes() != 0)
    throw ConfigError("redeploy of '" + spec.name + "': invalid memory");
  accrue_provisioned();
  Function& fn = fns_[id];
  // Invalidate every warm instance: next on-demand invocation is cold.
  for (const auto& inst : fn.idle)
    if (!inst.provisioned) sim_.cancel(inst.expiry_event);
  fn.idle.clear();
  fn.provisioned_total = 0;
  fn.spec = std::move(spec);
  // Provisioned capacity is re-established for the new version immediately
  // (the provider pre-initialises the new instances before cutover).
  const std::size_t target = fn.provisioned_target;
  fn.provisioned_target = 0;
  set_provisioned_concurrency(id, target);
}

void Platform::set_provisioned_concurrency(FunctionId id, std::size_t n) {
  NTCO_EXPECTS(id < fns_.size());
  accrue_provisioned();
  Function& fn = fns_[id];
  fn.provisioned_target = n;
  // Grow: create idle provisioned instances.
  while (fn.provisioned_total < n) {
    fn.idle.push_back(IdleInstance{next_instance_++, sim::kNoEvent, true});
    ++fn.provisioned_total;
  }
  // Shrink: retire idle provisioned instances now; busy ones retire on
  // completion (see finish_instance()).
  if (fn.provisioned_total > n) {
    auto it = fn.idle.begin();
    while (it != fn.idle.end() && fn.provisioned_total > n) {
      if (it->provisioned) {
        it = fn.idle.erase(it);
        --fn.provisioned_total;
      } else {
        ++it;
      }
    }
  }
}

void Platform::attach_observer(obs::TraceSink* trace,
                               obs::MetricsRegistry* metrics) {
  trace_ = trace;
  m_ = {};
  if (metrics != nullptr) {
    m_.invocations = &metrics->counter("serverless.invocations");
    m_.cold_starts = &metrics->counter("serverless.cold_starts");
    m_.warm_reuses = &metrics->counter("serverless.warm_reuses");
    m_.throttled = &metrics->counter("serverless.throttled");
    m_.preemptions = &metrics->counter("serverless.preemptions");
    m_.queue_wait_ms = &metrics->summary("serverless.queue_wait_ms");
    m_.exec_ms = &metrics->summary("serverless.exec_ms");
    m_.init_ms = &metrics->summary("serverless.init_ms");
  }
}

InvocationId Platform::invoke(FunctionId id, Cycles work, Callback done,
                              Tier tier) {
  return enqueue(id, work, Duration::zero(), std::move(done), tier);
}

InvocationId Platform::resume(FunctionId id, Cycles work, Duration exec_credit,
                              Callback done, Tier tier) {
  NTCO_EXPECTS(!exec_credit.is_negative());
  return enqueue(id, work, exec_credit, std::move(done), tier);
}

InvocationId Platform::enqueue(FunctionId id, Cycles work,
                               Duration exec_credit, Callback done,
                               Tier tier) {
  NTCO_EXPECTS(id < fns_.size());
  NTCO_EXPECTS(done != nullptr);
  ++stats_.invocations;
  if (m_.invocations) m_.invocations->add();
  if (trace_) {
    if (exec_credit.is_zero())
      obs::emit(trace_, sim_.now(), "faas.invoke",
                {{"fn", id},
                 {"work", work.value()},
                 {"tier", tier == Tier::Spot ? "spot" : "on_demand"}});
    else
      obs::emit(trace_, sim_.now(), "faas.resume",
                {{"fn", id},
                 {"work", work.value()},
                 {"credit", exec_credit},
                 {"tier", tier == Tier::Spot ? "spot" : "on_demand"}});
  }
  if (busy_ >= cfg_.account_concurrency || !queue_.empty()) {
    ++stats_.throttled;
    if (m_.throttled) m_.throttled->add();
    if (trace_)
      obs::emit(trace_, sim_.now(), "faas.throttled",
                {{"fn", id}, {"queue_depth", queue_.size()}});
  }
  const InvocationId inv_id = next_invocation_++;
  queue_.push_back(PendingInvocation{inv_id, id, work, std::move(done),
                                     sim_.now(), tier, exec_credit});
  pump();
  return inv_id;
}

const FunctionSpec& Platform::spec(FunctionId id) const {
  NTCO_EXPECTS(id < fns_.size());
  return fns_[id].spec;
}

DataSize Platform::quantize_memory(DataSize requested) const {
  const auto q = cfg_.memory_quantum.count_bytes();
  auto b = requested.count_bytes();
  b = std::max(b, cfg_.min_memory.count_bytes());
  b = ((b + q - 1) / q) * q;  // round up to quantum
  b = std::min(b, cfg_.max_memory.count_bytes());
  return DataSize::bytes(b);
}

double Platform::cpu_share(DataSize memory) const {
  NTCO_EXPECTS(!memory.is_zero());
  const double share = static_cast<double>(memory.count_bytes()) /
                       static_cast<double>(cfg_.full_share_memory.count_bytes());
  return std::min(share, cfg_.max_vcpus);
}

Duration Platform::exec_time(DataSize memory, Cycles work,
                             double parallel_fraction) const {
  NTCO_EXPECTS(parallel_fraction >= 0.0 && parallel_fraction <= 1.0);
  const double share = cpu_share(memory);
  double speed_factor;
  if (share <= 1.0) {
    // Sub-vCPU configurations time-slice a single core: the function's
    // parallelism cannot help.
    speed_factor = share;
  } else {
    // Amdahl's law over `share` cores at full per-core speed.
    speed_factor =
        1.0 / ((1.0 - parallel_fraction) + parallel_fraction / share);
  }
  return work / (cfg_.core_speed * speed_factor);
}

Duration Platform::cold_start_time(DataSize image) const {
  return cfg_.cold_start_base + image / cfg_.image_install_rate;
}

double Platform::price_multiplier(TimePoint when) const {
  return price_multiplier_at(cfg_.price_windows, when);
}

Money Platform::invocation_cost(DataSize memory, Duration billed,
                                TimePoint when, Tier tier) const {
  NTCO_EXPECTS(!billed.is_negative());
  // Round the billed duration up to the billing quantum.
  const auto q = cfg_.billing_quantum.count_micros();
  const auto us = (billed.count_micros() + q - 1) / q * q;
  const double gb_seconds = static_cast<double>(memory.count_bytes()) / 1e9 *
                            static_cast<double>(us) / 1e6;
  const double tier_factor =
      tier == Tier::Spot ? cfg_.spot_price_multiplier : 1.0;
  return cfg_.price_per_gb_second *
             (gb_seconds * price_multiplier(when) * tier_factor) +
         cfg_.price_per_request;
}

void Platform::pump() {
  while (busy_ < cfg_.account_concurrency && !queue_.empty()) {
    PendingInvocation inv = std::move(queue_.front());
    queue_.pop_front();
    begin(std::move(inv));
  }
}

void Platform::begin(PendingInvocation inv) {
  Function& fn = fns_[inv.fn];

  bool provisioned = false;
  bool cold = false;
  Duration init;

  if (!fn.idle.empty()) {
    // Prefer a provisioned instance; otherwise reuse most-recently-used
    // (LIFO), which maximises the chance older instances expire.
    auto it = std::find_if(fn.idle.rbegin(), fn.idle.rend(),
                           [](const IdleInstance& i) { return i.provisioned; });
    if (it == fn.idle.rend()) it = fn.idle.rbegin();
    provisioned = it->provisioned;
    if (!provisioned) sim_.cancel(it->expiry_event);
    fn.idle.erase(std::next(it).base());
    if (m_.warm_reuses) m_.warm_reuses->add();
    if (trace_)
      obs::emit(trace_, sim_.now(), "faas.warm_reuse",
                {{"fn", inv.fn}, {"provisioned", provisioned}});
  } else {
    cold = true;
    init = cold_start_time(fn.spec.image);
    ++stats_.cold_starts;
    if (m_.cold_starts) m_.cold_starts->add();
    if (trace_)
      obs::emit(trace_, sim_.now(), "faas.cold_start",
                {{"fn", inv.fn}, {"init", init}});
  }

  ++busy_;
  stats_.peak_concurrency = std::max(stats_.peak_concurrency, busy_);

  const Duration full_exec =
      exec_time(fn.spec.memory, inv.work, fn.spec.parallel_fraction);
  // Credit exec already performed by a checkpointed earlier run.
  const Duration planned = inv.exec_credit < full_exec
                               ? full_exec - inv.exec_credit
                               : Duration::zero();

  // Spot executions race an exponential preemption clock. A preempted
  // instance is torn down, so it neither returns to the warm pool nor
  // survives as provisioned capacity for this slot.
  Duration exec = planned;
  bool preempted = false;
  if (inv.tier == Tier::Spot && !cfg_.spot_mean_time_to_preempt.is_zero()) {
    const Duration survive = Duration::from_seconds(
        rng_.exponential(cfg_.spot_mean_time_to_preempt.to_seconds()));
    if (survive < planned) {
      exec = survive;
      preempted = true;
    }
  }

  RunningInvocation run;
  run.fn = inv.fn;
  run.done = std::move(inv.done);
  run.submitted = inv.submitted;
  run.admission = sim_.now();
  run.init = init;
  run.planned_exec = planned;
  run.exec = exec;
  run.exec_credit = inv.exec_credit;
  run.cold = cold;
  run.provisioned = provisioned;
  run.preempted_by_clock = preempted;
  run.tier = inv.tier;
  const InvocationId id = inv.id;
  run.completion =
      sim_.schedule_after(init + exec, [this, id] { complete(id, false); });
  running_.emplace(id, std::move(run));
}

void Platform::complete(InvocationId id, bool forced) {
  const auto it = running_.find(id);
  NTCO_EXPECTS(it != running_.end());
  RunningInvocation run = std::move(it->second);
  running_.erase(it);
  if (forced) sim_.cancel(run.completion);

  const TimePoint now = sim_.now();
  Duration init = run.init;
  Duration exec = run.exec;
  bool preempted = run.preempted_by_clock;
  if (forced) {
    // Truncate to what actually ran: init completes first, then exec.
    const Duration elapsed = now - run.admission;
    init = std::min(init, elapsed);
    exec = std::max(Duration::zero(), std::min(elapsed - init, run.exec));
    preempted = true;
  }
  const FunctionId fn_id = run.fn;
  const bool cold = run.cold;
  const bool provisioned = run.provisioned;
  const Tier tier = run.tier;

  InvocationResult r;
  r.submitted = run.submitted;
  r.started = run.admission + init;
  r.finished = now;
  r.cold_start = cold;
  r.preempted = preempted;
  r.tier = tier;
  r.queue_wait = run.admission - run.submitted;
  r.init_time = init;
  r.exec_time = exec;
  r.exec_credit = run.exec_credit;
  r.cost = invocation_cost(fns_[fn_id].spec.memory, exec, r.started, tier);

  stats_.total_exec += exec;
  stats_.total_init += init;
  stats_.exec_cost += r.cost - cfg_.price_per_request;
  stats_.request_cost += cfg_.price_per_request;
  if (preempted) ++stats_.preemptions;

  if (m_.exec_ms) m_.exec_ms->add(exec.to_millis());
  if (m_.init_ms) m_.init_ms->add(init.to_millis());
  if (m_.queue_wait_ms) m_.queue_wait_ms->add(r.queue_wait.to_millis());
  if (preempted && m_.preemptions) m_.preemptions->add();
  if (trace_) {
    if (preempted)
      obs::emit(trace_, sim_.now(), "faas.preempted",
                {{"fn", fn_id}, {"exec", exec}, {"forced", forced}});
    obs::emit(trace_, sim_.now(), "faas.complete",
              {{"fn", fn_id},
               {"exec", exec},
               {"queue_wait", r.queue_wait},
               {"cold", cold},
               {"cost", r.cost}});
  }

  if (preempted) {
    // Torn down: release concurrency without returning an instance.
    NTCO_EXPECTS(busy_ > 0);
    --busy_;
    if (provisioned) {
      Function& f = fns_[fn_id];
      if (f.provisioned_total > 0) --f.provisioned_total;
      // Re-establish the provisioned target with a fresh instance.
      const std::size_t target = f.provisioned_target;
      f.provisioned_target = 0;
      set_provisioned_concurrency(fn_id, target);
    }
  } else {
    finish_instance(fn_id, provisioned);
  }
  run.done(r);
  pump();
}

bool Platform::checkpoint_preempt(InvocationId id) {
  // Still throttled: remove from the queue and complete with zero exec.
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->id != id) continue;
    PendingInvocation inv = std::move(*it);
    queue_.erase(it);
    if (trace_)
      obs::emit(trace_, sim_.now(), "faas.checkpoint",
                {{"fn", inv.fn}, {"queued", true}});
    InvocationResult r;
    r.submitted = inv.submitted;
    r.started = sim_.now();
    r.finished = sim_.now();
    r.preempted = true;
    r.tier = inv.tier;
    r.queue_wait = sim_.now() - inv.submitted;
    r.exec_credit = inv.exec_credit;
    inv.done(r);
    pump();
    return true;
  }
  const auto it = running_.find(id);
  if (it == running_.end()) return false;
  if (trace_)
    obs::emit(trace_, sim_.now(), "faas.checkpoint",
              {{"fn", it->second.fn}, {"queued", false}});
  complete(id, /*forced=*/true);
  return true;
}

std::optional<InFlightStatus> Platform::in_flight(InvocationId id) const {
  for (const auto& p : queue_) {
    if (p.id != id) continue;
    const Function& fn = fns_[p.fn];
    const Duration full =
        exec_time(fn.spec.memory, p.work, fn.spec.parallel_fraction);
    const Duration planned =
        p.exec_credit < full ? full - p.exec_credit : Duration::zero();
    return InFlightStatus{false, Duration::zero(), planned};
  }
  const auto it = running_.find(id);
  if (it == running_.end()) return std::nullopt;
  const RunningInvocation& run = it->second;
  const Duration elapsed = sim_.now() - run.admission;
  const Duration consumed = std::max(
      Duration::zero(), std::min(elapsed - run.init, run.planned_exec));
  return InFlightStatus{true, consumed, run.planned_exec - consumed};
}

void Platform::finish_instance(FunctionId fn_id, bool provisioned) {
  NTCO_EXPECTS(busy_ > 0);
  --busy_;
  Function& fn = fns_[fn_id];
  if (provisioned) {
    if (fn.provisioned_total > fn.provisioned_target) {
      --fn.provisioned_total;  // retire excess provisioned capacity
    } else {
      fn.idle.push_back(IdleInstance{next_instance_++, sim::kNoEvent, true});
    }
    return;
  }
  // On-demand instance stays warm for the keep-alive window.
  const std::uint64_t instance_id = next_instance_++;
  const auto expiry =
      sim_.schedule_after(cfg_.keep_alive, [this, fn_id, instance_id] {
        auto& idle = fns_[fn_id].idle;
        const auto it = std::find_if(idle.begin(), idle.end(),
                                     [&](const IdleInstance& i) {
                                       return i.instance_id == instance_id;
                                     });
        if (it != idle.end()) idle.erase(it);
      });
  fn.idle.push_back(IdleInstance{instance_id, expiry, false});
}

void Platform::accrue_provisioned() const {
  const TimePoint now = sim_.now();
  const Duration elapsed = now - provisioned_accrued_until_;
  if (elapsed > Duration::zero()) {
    const double gb_seconds = provisioned_gb() * elapsed.to_seconds();
    stats_.provisioned_cost +=
        cfg_.provisioned_price_per_gb_second * gb_seconds;
  }
  provisioned_accrued_until_ = now;
}

double Platform::provisioned_gb() const {
  double gb = 0.0;
  for (const auto& fn : fns_)
    gb += static_cast<double>(fn.provisioned_total) *
          static_cast<double>(fn.spec.memory.count_bytes()) / 1e9;
  return gb;
}

std::size_t Platform::warm_count(FunctionId id) const {
  NTCO_EXPECTS(id < fns_.size());
  return fns_[id].idle.size();
}

PlatformStats Platform::stats() const {
  accrue_provisioned();
  return stats_;
}

Money Platform::total_cost() const {
  accrue_provisioned();
  return stats_.exec_cost + stats_.request_cost + stats_.provisioned_cost;
}

}  // namespace ntco::serverless
