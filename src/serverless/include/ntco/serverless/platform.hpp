#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ntco/common/price_window.hpp"
#include "ntco/common/rng.hpp"
#include "ntco/common/units.hpp"
#include "ntco/obs/metrics.hpp"
#include "ntco/obs/trace.hpp"
#include "ntco/sim/simulator.hpp"
#include "ntco/stats/accumulator.hpp"

/// \file platform.hpp
/// Serverless (FaaS) platform simulator.
///
/// Models the provider behaviour that matters to offloading economics:
///  - memory-proportional CPU share (an AWS-Lambda-like `mem / 1792 MB`
///    vCPU fraction, capped at a vCPU ceiling),
///  - warm instance reuse with LIFO keep-alive and expiry,
///  - cold starts proportional to deployment image size,
///  - provisioned concurrency (always-warm instances billed while idle),
///  - GB-second + per-request billing with 1 ms rounding,
///  - an account-wide concurrency limit with FIFO throttling,
///  - time-of-day price multipliers (stand-in for spot/off-peak pricing;
///    see DESIGN.md substitution notes).
///
/// The platform models the compute side only; network transfer to/from the
/// UE is accounted by the caller (core::OffloadController), which knows the
/// link.

namespace ntco::serverless {

/// Handle to a deployed function.
using FunctionId = std::uint32_t;

/// Handle to one in-flight invocation (monotonic, never reused). Returned
/// by invoke()/resume() so callers holding delay-tolerant jobs can
/// checkpoint them mid-run (see checkpoint_preempt()).
using InvocationId = std::uint64_t;

/// Time-of-day pricing window — the shared definition in
/// <ntco/common/price_window.hpp>, re-exported so existing
/// serverless::PriceWindow spellings keep compiling. The continuum
/// federation estimates with the same type and helper, so placement cost
/// accounting cannot drift from platform billing.
using PriceWindow = ntco::PriceWindow;

/// Provider parameters. Defaults approximate a large public FaaS offering.
struct PlatformConfig {
  /// Full-share core speed; effective speed scales with memory.
  Frequency core_speed = Frequency::gigahertz(2.5);
  /// Memory that buys exactly one full vCPU.
  DataSize full_share_memory = DataSize::megabytes(1792);
  /// Upper bound on vCPUs regardless of memory.
  double max_vcpus = 6.0;
  DataSize min_memory = DataSize::megabytes(128);
  DataSize max_memory = DataSize::megabytes(10240);
  /// Configurable memory granularity.
  DataSize memory_quantum = DataSize::megabytes(64);

  Money price_per_gb_second = Money::nano_usd(16'667);  // $0.0000166667
  Money price_per_request = Money::nano_usd(200);       // $0.0000002
  /// Idle provisioned capacity price (per GB-second, cheaper than exec).
  Money provisioned_price_per_gb_second = Money::nano_usd(4'167);
  /// Billing granularity for execution time.
  Duration billing_quantum = Duration::millis(1);

  Duration cold_start_base = Duration::millis(180);
  /// Image bytes installed per second during a cold start.
  DataRate image_install_rate = DataRate::megabits_per_second(400);
  Duration keep_alive = Duration::minutes(10);

  /// Account-wide concurrent execution limit; excess invocations queue.
  std::size_t account_concurrency = 1000;

  /// Optional time-of-day execution-price multipliers.
  std::vector<PriceWindow> price_windows;

  /// Spot tier: execution price factor relative to on-demand.
  double spot_price_multiplier = 0.3;
  /// Mean time until a running spot execution is preempted (exponential).
  /// Duration::zero() disables preemption entirely.
  Duration spot_mean_time_to_preempt = Duration::minutes(10);
  /// Seed of the platform's internal randomness (spot preemption draws).
  std::uint64_t seed = 0x5EED;
};

/// Capacity tier of one invocation.
enum class Tier : std::uint8_t {
  OnDemand,  ///< full price, never preempted
  Spot,      ///< discounted, may be preempted mid-execution
};

/// Deployment descriptor for one function (one code partition).
struct FunctionSpec {
  std::string name;
  DataSize memory = DataSize::megabytes(256);  ///< configured memory
  DataSize image = DataSize::megabytes(30);    ///< deployment package size
  /// Amdahl parallel fraction of the function body: how much of the work
  /// can exploit vCPUs beyond the first (1.0 = embarrassingly parallel).
  double parallel_fraction = 1.0;
};

/// Outcome of one invocation, delivered to the completion callback.
struct InvocationResult {
  TimePoint submitted;
  TimePoint started;   ///< when compute began (after queueing + cold start)
  TimePoint finished;
  bool cold_start = false;
  bool preempted = false;  ///< spot execution killed before completion
  Tier tier = Tier::OnDemand;
  Duration queue_wait;  ///< time throttled by the concurrency limit
  Duration init_time;   ///< cold-start time paid (zero when warm)
  Duration exec_time;   ///< execution time consumed (partial if preempted)
  Duration exec_credit;  ///< prior exec credited by resume() (zero otherwise)
  Money cost;           ///< execution + request cost of this invocation
};

/// Progress snapshot of an in-flight invocation (see in_flight()).
struct InFlightStatus {
  bool executing = false;  ///< false while still queued by the throttle
  Duration consumed;       ///< exec time burned so far (excl. credit)
  Duration remaining;      ///< exec time still ahead at this configuration
};

/// Aggregate platform accounting.
struct PlatformStats {
  std::uint64_t invocations = 0;
  std::uint64_t cold_starts = 0;
  std::uint64_t throttled = 0;  ///< invocations that had to queue
  std::uint64_t preemptions = 0;  ///< spot executions killed mid-run
  Duration total_exec;
  Duration total_init;
  Money exec_cost;
  Money request_cost;
  Money provisioned_cost;  ///< accrued idle-capacity cost (query-time lazy)
  std::size_t peak_concurrency = 0;
};

/// Discrete-event serverless platform. Non-copyable; lives alongside one
/// sim::Simulator.
class Platform {
 public:
  using Callback = std::function<void(const InvocationResult&)>;

  Platform(sim::Simulator& sim, PlatformConfig cfg);

  Platform(const Platform&) = delete;
  Platform& operator=(const Platform&) = delete;

  /// Attaches observability. `trace` receives the "faas.*" span records
  /// (cold starts, warm reuse, throttling, spot preemption); `metrics`
  /// hosts the "serverless.*" instruments. Either may be null; with both
  /// null the hooks cost one branch per event. Stable names are listed in
  /// DESIGN.md ("Observability").
  void attach_observer(obs::TraceSink* trace, obs::MetricsRegistry* metrics);

  /// Registers a function. Memory is validated against provider limits and
  /// must be quantum-aligned (use quantize_memory()). Throws ConfigError.
  FunctionId deploy(FunctionSpec spec);

  /// Replaces the spec of a deployed function (new version): existing warm
  /// instances are invalidated, so the next invocation is cold.
  void redeploy(FunctionId id, FunctionSpec spec);

  /// Keeps `n` instances permanently warm for the function. Takes effect
  /// immediately; idle provisioned capacity accrues cost until changed.
  void set_provisioned_concurrency(FunctionId id, std::size_t n);

  /// Asynchronously executes `work` on the function. `done` fires when the
  /// invocation completes — or, for Tier::Spot, when it is preempted
  /// (result.preempted == true, exec_time partial, billed at the spot
  /// price); retrying is the caller's policy (see sched::DeferredExecutor).
  /// The returned handle stays valid until `done` fires.
  InvocationId invoke(FunctionId id, Cycles work, Callback done,
                      Tier tier = Tier::OnDemand);

  // --- Checkpoint / resume hooks (continuum::MigrationEngine) ------------

  /// As invoke(), but credits `exec_credit` of already-performed execution
  /// (from a checkpointed earlier run, here or on another site): only the
  /// remaining exec time is simulated and billed. The earlier partial run
  /// was already billed by its own invocation at its own tier rate, so
  /// nothing is double-charged. Credit beyond the full exec time clamps to
  /// an immediate (zero-exec) completion.
  InvocationId resume(FunctionId id, Cycles work, Duration exec_credit,
                      Callback done, Tier tier = Tier::OnDemand);

  /// Forces a checkpoint-preemption of an in-flight invocation: the job is
  /// stopped where it stands and its callback fires *now* with
  /// `preempted == true` and the partial exec billed at the invocation's
  /// tier rate — indistinguishable from a spot preemption, so one caller
  /// path handles both. A queued (still-throttled) invocation is removed
  /// and completes with zero exec and zero cost. Returns false when the
  /// handle is unknown (already completed). The executing instance is torn
  /// down, exactly like a spot preemption.
  bool checkpoint_preempt(InvocationId id);

  /// Progress of an in-flight invocation; nullopt once completed.
  /// `remaining` reports the planned tail at this memory configuration and
  /// does not anticipate a pending spot-preemption draw.
  [[nodiscard]] std::optional<InFlightStatus> in_flight(
      InvocationId id) const;

  [[nodiscard]] const FunctionSpec& spec(FunctionId id) const;
  [[nodiscard]] std::size_t function_count() const { return fns_.size(); }

  // --- Pure pricing/timing math, shared with the analytic allocator ------

  /// Rounds a requested memory size to a deployable configuration.
  [[nodiscard]] DataSize quantize_memory(DataSize requested) const;

  /// vCPU share purchased by `memory`, in (0, max_vcpus].
  [[nodiscard]] double cpu_share(DataSize memory) const;

  /// Execution time of `work` at the given memory configuration for a
  /// function with the given Amdahl parallel fraction. Below one vCPU the
  /// single thread simply gets `share` of a core; above it, Amdahl's law
  /// over `share` cores applies: speedup = 1 / ((1-p) + p/share).
  [[nodiscard]] Duration exec_time(DataSize memory, Cycles work,
                                   double parallel_fraction) const;

  /// Fully parallel convenience overload.
  [[nodiscard]] Duration exec_time(DataSize memory, Cycles work) const {
    return exec_time(memory, work, 1.0);
  }

  /// Cold-start duration for an image of the given size.
  [[nodiscard]] Duration cold_start_time(DataSize image) const;

  /// Cost of one execution of `billed` duration at `memory`, at simulated
  /// time `when` (applies the time-of-day multiplier and the tier's price
  /// factor), including the per-request fee.
  [[nodiscard]] Money invocation_cost(DataSize memory, Duration billed,
                                      TimePoint when,
                                      Tier tier = Tier::OnDemand) const;

  /// Execution-price multiplier in effect at `when`.
  [[nodiscard]] double price_multiplier(TimePoint when) const;

  // --- Accounting ---------------------------------------------------------

  /// Stats with provisioned-capacity cost accrued up to sim.now().
  [[nodiscard]] PlatformStats stats() const;

  /// Total money spent (execution + requests + provisioned capacity).
  [[nodiscard]] Money total_cost() const;

  /// Currently executing invocations (for tests).
  [[nodiscard]] std::size_t concurrency_in_use() const { return busy_; }
  /// Warm (idle, reusable) instances of a function, incl. provisioned.
  [[nodiscard]] std::size_t warm_count(FunctionId id) const;

  [[nodiscard]] const PlatformConfig& config() const { return cfg_; }

 private:
  struct IdleInstance {
    std::uint64_t instance_id;
    sim::EventId expiry_event;  ///< sim::kNoEvent for provisioned (none)
    bool provisioned;
  };

  struct Function {
    FunctionSpec spec;
    std::vector<IdleInstance> idle;  ///< LIFO warm pool
    std::size_t provisioned_target = 0;
    std::size_t provisioned_total = 0;  ///< provisioned instances in existence
  };

  struct PendingInvocation {
    InvocationId id = 0;
    FunctionId fn;
    Cycles work;
    Callback done;
    TimePoint submitted;
    Tier tier = Tier::OnDemand;
    Duration exec_credit;  ///< prior exec credited by resume()
  };

  /// One admitted (executing) invocation, keyed by InvocationId in
  /// `running_` so checkpoint_preempt() can find and stop it mid-run.
  struct RunningInvocation {
    FunctionId fn;
    Callback done;
    TimePoint submitted;
    TimePoint admission;   ///< when it left the throttle queue
    Duration init;         ///< cold-start time ahead of exec
    Duration planned_exec; ///< exec after credit, before any spot draw
    Duration exec;         ///< exec this run will actually perform
    Duration exec_credit;
    bool cold = false;
    bool provisioned = false;
    bool preempted_by_clock = false;  ///< spot draw lost the race
    Tier tier = Tier::OnDemand;
    sim::EventId completion = sim::kNoEvent;
  };

  InvocationId enqueue(FunctionId id, Cycles work, Duration exec_credit,
                       Callback done, Tier tier);
  void pump();  ///< admits queued invocations while concurrency allows
  void begin(PendingInvocation inv);
  /// Delivers the result of `running_[id]`; `forced` marks a
  /// checkpoint_preempt() (exec truncated to what actually ran).
  void complete(InvocationId id, bool forced);
  void finish_instance(FunctionId fn, bool provisioned);
  void accrue_provisioned() const;
  [[nodiscard]] double provisioned_gb() const;

  /// Cached instrument pointers; null when no registry is attached, so the
  /// hot path pays one pointer test per update.
  struct Instruments {
    obs::Counter* invocations = nullptr;
    obs::Counter* cold_starts = nullptr;
    obs::Counter* warm_reuses = nullptr;
    obs::Counter* throttled = nullptr;
    obs::Counter* preemptions = nullptr;
    stats::Accumulator* queue_wait_ms = nullptr;
    stats::Accumulator* exec_ms = nullptr;
    stats::Accumulator* init_ms = nullptr;
  };

  sim::Simulator& sim_;
  PlatformConfig cfg_;
  Rng rng_;
  obs::TraceSink* trace_ = nullptr;
  Instruments m_;
  std::vector<Function> fns_;
  std::deque<PendingInvocation> queue_;
  /// Executing invocations (ordered map: deterministic iteration, stable
  /// handles). Entries move queue_ -> running_ at admission and are erased
  /// when their result is delivered.
  std::map<InvocationId, RunningInvocation> running_;
  std::size_t busy_ = 0;
  std::uint64_t next_instance_ = 1;
  InvocationId next_invocation_ = 1;

  mutable PlatformStats stats_;
  mutable TimePoint provisioned_accrued_until_;
};

}  // namespace ntco::serverless
